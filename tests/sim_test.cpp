#include "sim/power_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

double trace_charge_fc(const CycleTrace& t, double dt_ps) {
  double q = 0.0;
  for (double i : t.current_ma) q += i * dt_ps;
  return q;
}

class SimTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), lib_);
  }
};

TEST_F(SimTest, QuietCircuitDrawsNothing) {
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = ~a;
    endmodule)");
  PowerSimulator sim(nl, {});
  sim.set_input("a", false);
  sim.settle();
  const CycleTrace t = sim.run_cycle();
  // Inputs unchanged: zero transitions, zero energy.
  EXPECT_EQ(t.transitions, 0);
  EXPECT_DOUBLE_EQ(t.energy_pj, 0.0);
  EXPECT_DOUBLE_EQ(t.peak_ma(), 0.0);
}

TEST_F(SimTest, RisingTransitionBooksCharge) {
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = a;
    endmodule)");
  CapTable caps;
  caps["a"] = 10.0;
  PowerSimulator sim(nl, caps);
  sim.set_input("a", false);
  sim.settle();
  sim.set_input("a", true);
  const CycleTrace t = sim.run_cycle();
  EXPECT_GT(t.transitions, 0);
  EXPECT_GT(t.energy_pj, 0.0);
  // Sampled charge equals booked energy / VDD (pulse fully inside cycle).
  const PowerSimOptions opts;
  const double q_fc = trace_charge_fc(t, opts.sampling.sample_dt_s() * 1e12);
  EXPECT_NEAR(q_fc * opts.process.vdd_v * 1e-3, t.energy_pj,
              t.energy_pj * 0.02);
}

TEST_F(SimTest, FallingTransitionDrawsNoSupplyCharge) {
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = a;
    endmodule)");
  PowerSimulator sim(nl, {});
  sim.set_input("a", true);
  sim.settle();
  sim.set_input("a", false);
  const CycleTrace t = sim.run_cycle();
  EXPECT_GT(t.transitions, 0);       // nets did switch...
  EXPECT_DOUBLE_EQ(t.energy_pj, 0.0);  // ...but discharge is not supply current
}

TEST_F(SimTest, EnergyScalesWithCapacitance) {
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = a;
    endmodule)");
  auto energy_with = [&](double cap) {
    CapTable caps;
    caps["a"] = cap;
    caps["y"] = cap;
    // Port nets and internal nets all present; BUF output net named y.
    PowerSimulator sim(nl, caps);
    sim.set_input("a", false);
    sim.settle();
    sim.set_input("a", true);
    return sim.run_cycle().energy_pj;
  };
  const double e1 = energy_with(5.0);
  const double e2 = energy_with(50.0);
  EXPECT_GT(e2, e1 * 3);
}

TEST_F(SimTest, HammingDistanceDependence) {
  // 4-bit register: energy grows with the number of bits flipping.
  const Netlist nl = map_hdl(R"(
    module m (input clk, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) r <= d;
      assign q = r;
    endmodule)");
  PowerSimulator sim(nl, {});
  // Inputs arrive mid-cycle, so the register captures the value driven in
  // the *previous* run_cycle call.
  auto load = [&](unsigned v) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input("d_" + std::to_string(i), (v >> i) & 1);
    }
    return sim.run_cycle();
  };
  load(0);
  load(0);
  const double e0 = load(0).energy_pj;      // register stays at 0000
  load(0b0001);
  const double e1 = load(0b1111).energy_pj;  // loads 0001: one bit rises
  const double e4 = load(0).energy_pj;       // loads 1111: three more rise
  EXPECT_GT(e1, e0);
  EXPECT_GT(e4, e1);
}

TEST_F(SimTest, TimedOutputsMatchFunctionalSim) {
  const std::string src = R"(
    module m (input clk, input [2:0] d, output [2:0] q);
      reg [2:0] r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule)";
  const Netlist nl = map_hdl(src);
  PowerSimulator psim(nl, {});
  FunctionalSim fsim(nl);
  fsim.propagate();
  unsigned vals[] = {3, 5, 7, 1, 0, 6, 2, 4};
  for (unsigned v : vals) {
    for (int i = 0; i < 3; ++i) {
      psim.set_input("d_" + std::to_string(i), (v >> i) & 1);
      fsim.set_input("d_" + std::to_string(i), (v >> i) & 1);
    }
    psim.run_cycle();
    // Functional sim: capture happens at the *next* edge, so propagate
    // first, then step; power sim inputs arrive after its capture.  Align
    // by stepping the functional sim one cycle behind.
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(psim.output("q_" + std::to_string(i)),
                fsim.output("q_" + std::to_string(i)))
          << "value " << v;
    }
    fsim.propagate();
    fsim.step_clock();
  }
}

TEST_F(SimTest, WddlCycleHasConstantSwitchingCount) {
  // The 100% switching factor: the number of transitions per WDDL cycle is
  // data-independent (every rail pair switches exactly twice).
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, input c, output y);
      assign y = (a ^ b) | (b & c);
    endmodule)");
  WddlLibrary wlib(lib_);
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  const Netlist diff = expand_differential(sub.fat, wlib);

  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(diff, {}, opts);
  // Drive a first cycle to leave the all-zero power-up state.
  auto drive = [&](unsigned v) {
    const char* names[] = {"a", "b", "c"};
    for (int i = 0; i < 3; ++i) {
      sim.set_input(std::string(names[i]) + "_t", (v >> i) & 1);
      sim.set_input(std::string(names[i]) + "_f", !((v >> i) & 1));
    }
    return sim.run_cycle();
  };
  drive(0b000);
  std::vector<int> counts;
  std::vector<double> energies;
  for (unsigned v = 0; v < 8; ++v) {
    const CycleTrace t = drive(v);
    counts.push_back(t.transitions);
    energies.push_back(t.energy_pj);
  }
  // Every output rail pair switches exactly once per phase (tested
  // exhaustively in wddl_test); the *total* count varies only by the
  // internal product nets of multi-cube compounds, so it stays in a
  // narrow band — unlike a CMOS design, where it can drop to zero.
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*lo, 0);
  EXPECT_LT(*hi - *lo, *hi / 2);
  // With the pin-cap fallback (no routed wires) the internal product-net
  // asymmetry is relatively large; the extracted-cap case is checked at
  // the flow level (flow_test), where NSD drops below 1%.
  const auto stats = compute_energy_stats(energies);
  EXPECT_LT(stats.nsd, 0.15);
}

TEST_F(SimTest, GlitchPeriodTruncatesEvaluation) {
  // With a very short cycle, a deep cone cannot settle before the capture
  // edge: the register captures a stale value.
  const Netlist nl = map_hdl(R"(
    module m (input clk, input [3:0] a, output y);
      reg r;
      always @(posedge clk) r <= (a[0] ^ a[1]) ^ (a[2] ^ a[3]);
      assign y = r;
    endmodule)");
  PowerSimulator slow(nl, {});
  PowerSimulator fast(nl, {});
  for (int i = 0; i < 4; ++i) {
    slow.set_input("a_" + std::to_string(i), true);
    fast.set_input("a_" + std::to_string(i), true);
  }
  // a = 1111 -> parity 0; then a = 0111 -> parity 1.
  slow.run_cycle();
  fast.run_cycle();
  slow.set_input("a_3", false);
  fast.set_input("a_3", false);
  slow.run_cycle();
  fast.run_cycle(200.0);  // 200 ps: shorter than the XOR tree delay
  // One more edge captures the (settled vs truncated) values.
  slow.run_cycle();
  fast.run_cycle(200.0);
  EXPECT_TRUE(slow.output("y"));
  EXPECT_FALSE(fast.output("y"));
}

TEST(EnergyStatsTest, Formulas) {
  const EnergyStats s = compute_energy_stats({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean_pj, 2.0);
  EXPECT_DOUBLE_EQ(s.min_pj, 1.0);
  EXPECT_DOUBLE_EQ(s.max_pj, 3.0);
  EXPECT_DOUBLE_EQ(s.ned, 1.0);
  EXPECT_NEAR(s.nsd, 0.40824829, 1e-6);
  const EnergyStats z = compute_energy_stats({});
  EXPECT_DOUBLE_EQ(z.mean_pj, 0.0);
}

}  // namespace
}  // namespace secflow
