#include "lec/lec.h"

#include <gtest/gtest.h>

#include "lec/bdd.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

// --- BDD package -------------------------------------------------------------

TEST(Bdd, TerminalsAndVariables) {
  Bdd bdd;
  EXPECT_NE(Bdd::kFalse, Bdd::kTrue);
  const BddRef a = bdd.var(0);
  EXPECT_EQ(bdd.var(0), a);  // canonical
  EXPECT_NE(a, bdd.var(1));
}

TEST(Bdd, BooleanAlgebra) {
  Bdd bdd;
  const BddRef a = bdd.var(0);
  const BddRef b = bdd.var(1);
  EXPECT_EQ(bdd.bdd_and(a, a), a);
  EXPECT_EQ(bdd.bdd_or(a, a), a);
  EXPECT_EQ(bdd.bdd_and(a, bdd.bdd_not(a)), Bdd::kFalse);
  EXPECT_EQ(bdd.bdd_or(a, bdd.bdd_not(a)), Bdd::kTrue);
  EXPECT_EQ(bdd.bdd_not(bdd.bdd_not(a)), a);
  // Commutativity gives identical nodes (canonicity).
  EXPECT_EQ(bdd.bdd_and(a, b), bdd.bdd_and(b, a));
  EXPECT_EQ(bdd.bdd_xor(a, b), bdd.bdd_xor(b, a));
  // De Morgan.
  EXPECT_EQ(bdd.bdd_not(bdd.bdd_and(a, b)),
            bdd.bdd_or(bdd.bdd_not(a), bdd.bdd_not(b)));
}

TEST(Bdd, EvalMatchesSemantics) {
  Bdd bdd;
  const BddRef a = bdd.var(0);
  const BddRef b = bdd.var(1);
  const BddRef c = bdd.var(2);
  const BddRef f = bdd.bdd_or(bdd.bdd_and(a, b), bdd.bdd_not(c));
  for (unsigned i = 0; i < 8; ++i) {
    const std::vector<bool> assign = {(i & 1) != 0, (i & 2) != 0,
                                      (i & 4) != 0};
    EXPECT_EQ(bdd.eval(f, assign),
              (assign[0] && assign[1]) || !assign[2])
        << i;
  }
}

TEST(Bdd, ApplyFnMatchesTruthTable) {
  Bdd bdd;
  std::vector<BddRef> args = {bdd.var(0), bdd.var(1), bdd.var(2)};
  for (std::uint64_t t = 0; t < 256; t += 5) {
    const LogicFn fn(3, t);
    const BddRef f = bdd.apply_fn(fn, args);
    for (unsigned i = 0; i < 8; ++i) {
      const std::vector<bool> assign = {(i & 1) != 0, (i & 2) != 0,
                                        (i & 4) != 0};
      EXPECT_EQ(bdd.eval(f, assign), fn.eval(i)) << "t=" << t << " i=" << i;
    }
  }
}

TEST(Bdd, AnySatFindsWitness) {
  Bdd bdd;
  const BddRef a = bdd.var(0);
  const BddRef b = bdd.var(1);
  const BddRef f = bdd.bdd_and(bdd.bdd_not(a), b);
  const auto assign = bdd.any_sat(f, 2);
  EXPECT_TRUE(bdd.eval(f, assign));
  EXPECT_FALSE(assign[0]);
  EXPECT_TRUE(assign[1]);
}

// --- LEC ----------------------------------------------------------------------

class LecTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), lib_);
  }
};

TEST_F(LecTest, IdenticalNetlistsAreEquivalent) {
  const Netlist a = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = x ^ y;
    endmodule)");
  const LecResult r = check_equivalence(a, a);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.compared_points, 1);
}

TEST_F(LecTest, StructurallyDifferentButEquivalent) {
  // Same function, different gates: z = !(x & y) vs !x | !y.
  const Netlist a = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = ~(x & y);
    endmodule)");
  const Netlist b = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = ~x | ~y;
    endmodule)");
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST_F(LecTest, DetectsFunctionalDifference) {
  const Netlist a = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = x & y;
    endmodule)");
  const Netlist b = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = x | y;
    endmodule)");
  const LecResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  ASSERT_EQ(r.mismatches.size(), 1u);
  EXPECT_EQ(r.mismatches[0].what, "output z");
  EXPECT_FALSE(r.mismatches[0].counterexample.empty());
}

TEST_F(LecTest, CounterexampleIsReal) {
  const Netlist a = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = x & y;
    endmodule)");
  const Netlist b = map_hdl(R"(
    module m (input x, input y, output z);
      assign z = x;
    endmodule)");
  const LecResult r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  // The counterexample must set x=1, y=0 (the only differing assignment).
  EXPECT_NE(r.mismatches[0].counterexample.find("x=1"), std::string::npos);
  EXPECT_NE(r.mismatches[0].counterexample.find("y=0"), std::string::npos);
}

TEST_F(LecTest, SequentialEquivalenceByRegisterCorrespondence) {
  const std::string src = R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule)";
  const Netlist a = map_hdl(src);
  const Netlist b = map_hdl(src);
  const LecResult r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.compared_points, 2);  // output q + register r_reg
}

TEST_F(LecTest, DetectsNextStateDifference) {
  const Netlist a = map_hdl(R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule)");
  const Netlist b = map_hdl(R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d | r;
      assign q = r;
    endmodule)");
  const LecResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.mismatches[0].what, "register r_reg");
}

TEST_F(LecTest, ReportsMissingPortsAndRegisters) {
  const Netlist a = map_hdl(R"(
    module m (input clk, input d, output q, output extra);
      reg r;
      always @(posedge clk) r <= d;
      assign q = r;
      assign extra = d;
    endmodule)");
  const Netlist b = map_hdl(R"(
    module m (input d, output q);
      assign q = d;
    endmodule)");
  const LecResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  bool missing_port = false, missing_reg = false;
  for (const LecMismatch& m : r.mismatches) {
    if (m.what.find("extra") != std::string::npos) missing_port = true;
    if (m.what.find("register") != std::string::npos) missing_reg = true;
  }
  EXPECT_TRUE(missing_port);
  EXPECT_TRUE(missing_reg);
}

// --- the paper's verification step: fat netlist == original -----------------

TEST_F(LecTest, FatNetlistEquivalentToOriginal) {
  const std::string src = R"(
    module m (input clk, input [3:0] a, input [3:0] b, output [3:0] y);
      reg [3:0] r;
      wire [3:0] t;
      assign t = (a ^ b) & ~(a & b);
      always @(posedge clk) r <= t ^ r;
      assign y = r;
    endmodule)";
  const Netlist rtl = map_hdl(src);
  WddlLibrary wlib(lib_);
  const SubstitutionResult res = substitute_cells(rtl, wlib);
  const LecResult r = check_equivalence(rtl, res.fat);
  EXPECT_TRUE(r.equivalent) << (r.mismatches.empty()
                                    ? ""
                                    : r.mismatches[0].what + " @ " +
                                          r.mismatches[0].counterexample);
  EXPECT_EQ(r.compared_points, 8);  // 4 outputs + 4 registers
}

TEST_F(LecTest, FatLecCatchesInjectedBug) {
  // Corrupt the fat netlist by retargeting one compound input and verify
  // the checker notices.
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, input c, output y);
      assign y = (a & b) | c;
    endmodule)");
  WddlLibrary wlib(lib_);
  SubstitutionResult res = substitute_cells(rtl, wlib);
  // Find a gate instance with >= 2 inputs and swap one input to another net.
  bool corrupted = false;
  for (InstId iid : res.fat.instance_ids()) {
    const CellType& type = res.fat.cell_of(iid);
    if (type.kind != CellKind::kCombinational || type.n_inputs() < 2) continue;
    const auto pins = type.input_pins();
    const NetId other =
        res.fat.instance(iid).conns[static_cast<std::size_t>(pins[1])];
    res.fat.disconnect(iid, pins[0]);
    res.fat.connect(iid, pins[0], other);
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(check_equivalence(rtl, res.fat).equivalent);
}

}  // namespace
}  // namespace secflow
