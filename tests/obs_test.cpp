// Observability subsystem tests: JSON round-trips, leveled logging,
// deterministic metric aggregation across thread counts, Chrome
// trace-event export, FlowReport schema validation, and the core
// guarantee that observability never changes flow artifacts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/error.h"
#include "base/parallel.h"
#include "flow/flow.h"
#include "liberty/builtin_lib.h"
#include "netlist/verilog_writer.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pnr/def.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, DumpParseRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue("flow \"x\"\n\t"));
  doc.set("count", JsonValue(std::int64_t{42}));
  doc.set("ratio", JsonValue(0.25));
  doc.set("on", JsonValue(true));
  doc.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(1.0));
  arr.push_back(JsonValue(std::string("two")));
  doc.set("list", std::move(arr));

  const std::string text = json_dump(doc, 2);
  const JsonValue back = json_parse(text);
  EXPECT_EQ(doc, back);
  // And the round trip is a fixed point.
  EXPECT_EQ(json_dump(back, 2), text);
}

TEST(Json, IntegralDoublesHaveNoDecimalPoint) {
  EXPECT_EQ(json_dump(JsonValue(std::int64_t{1234567})), "1234567");
  EXPECT_EQ(json_dump(JsonValue(3.0)), "3");
  EXPECT_EQ(json_dump(JsonValue(0.5)), "0.5");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), ParseError);
  EXPECT_THROW(json_parse("{"), ParseError);
  EXPECT_THROW(json_parse("[1,]"), ParseError);
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW(json_parse("{\"a\":1,\"a\":2}"), ParseError);  // dup key
  EXPECT_THROW(json_parse("'single'"), ParseError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), ParseError);
}

TEST(Json, DeepNestingFailsCleanlyInsteadOfOverflowingTheStack) {
  // Just inside the limit parses; past it throws a ParseError rather than
  // recursing until the stack dies.
  std::string deep_ok(255, '[');
  deep_ok += "1";
  deep_ok += std::string(255, ']');
  EXPECT_NO_THROW(json_parse(deep_ok));

  std::string too_deep(100000, '[');
  try {
    json_parse(too_deep);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting depth"), std::string::npos);
  }

  std::string deep_obj;
  for (int i = 0; i < 400; ++i) deep_obj += "{\"k\":";
  EXPECT_THROW(json_parse(deep_obj), ParseError);
}

TEST(Json, ParsesEscapesAndNesting) {
  const JsonValue v = json_parse(
      R"({"s": "a\n\t\"\\A", "nested": {"arr": [true, false, null]}})");
  EXPECT_EQ(v.find("s")->as_string(), "a\n\t\"\\A");
  const JsonValue* arr = v.find("nested")->find("arr");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->items().size(), 3u);
}

// ------------------------------------------------------------- Logging --

TEST(Log, LevelNamesRoundTrip) {
  for (const LogLevel l : {LogLevel::kOff, LogLevel::kError, LogLevel::kWarn,
                           LogLevel::kInfo, LogLevel::kDebug,
                           LogLevel::kTrace}) {
    EXPECT_EQ(parse_log_level(log_level_name(l)), l);
  }
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);  // case-insensitive
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
}

TEST(Log, SuppressedLevelsEmitNothing) {
  Logger log(LogLevel::kWarn);
  std::vector<std::string> lines;
  log.set_sink([&](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log.log(LogLevel::kInfo, "test", "hidden");
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  // The Logger itself does not filter inside log() — the macros do — but
  // enabled() is the contract the macros rely on.
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(Log, FormatsStructuredFields) {
  Logger log(LogLevel::kDebug);
  std::vector<std::string> lines;
  log.set_sink([&](LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  log.log(LogLevel::kInfo, "pnr", "route iteration",
          {LogField("iter", 3), LogField("path", "a b"),
           LogField("ok", true)});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "info [pnr] route iteration iter=3 path=\"a b\" ok=true");
}

TEST(Log, ConcurrentEmissionNeverShears) {
  Logger log(LogLevel::kInfo);
  std::mutex mu;
  std::vector<std::string> lines;
  log.set_sink([&](LogLevel, std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  Parallelism par;
  par.n_threads = 4;
  parallel_for(64, par, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      log.log(LogLevel::kInfo, "t", "msg", {LogField("i", std::to_string(i))});
    }
  });
  EXPECT_EQ(lines.size(), 64u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(l.rfind("info [t] msg i=", 0) == 0) << l;
  }
}

// ------------------------------------------------------------- Metrics --

/// Record a fixed workload into `m` from `n_threads` workers.
void record_workload(Metrics& m, int n_threads) {
  Parallelism par;
  par.n_threads = n_threads;
  parallel_for(1000, par, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      m.add("work.items");
      m.add("work.bytes", i);
      m.gauge_max("work.peak", static_cast<double>(i));
      m.observe("work.size", static_cast<double>(i % 17));
    }
  });
}

TEST(Metrics, AggregationIsDeterministicAcrossThreadCounts) {
  MetricsSnapshot reference;
  for (const int threads : {1, 2, 4, 8}) {
    Metrics m;
    m.set_enabled(true);
    record_workload(m, threads);
    const MetricsSnapshot s = m.snapshot();
    EXPECT_EQ(s.counters.at("work.items"), 1000u);
    EXPECT_EQ(s.counters.at("work.bytes"), 1000u * 999u / 2u);
    EXPECT_EQ(s.gauges.at("work.peak"), 999.0);
    const HistogramStat& h = s.histograms.at("work.size");
    EXPECT_EQ(h.count, 1000u);
    EXPECT_EQ(h.min, 0.0);
    EXPECT_EQ(h.max, 16.0);
    if (threads == 1) {
      reference = s;
    } else {
      // count/min/max and all integer aggregates are exact at any thread
      // count; only the histogram double `sum` may differ in final ulps.
      EXPECT_EQ(s.counters, reference.counters);
      EXPECT_EQ(s.gauges, reference.gauges);
      EXPECT_NEAR(h.sum, reference.histograms.at("work.size").sum, 1e-6);
    }
  }
}

TEST(Metrics, DisabledRegistryRecordsNothing) {
  Metrics m;  // disabled by default
  m.add("never");
  m.gauge_max("never", 1.0);
  m.observe("never", 1.0);
  EXPECT_TRUE(m.snapshot().empty());
}

TEST(Metrics, ResetClearsValuesButKeepsWorking) {
  Metrics m;
  m.set_enabled(true);
  m.add("c", 5);
  m.reset();
  EXPECT_TRUE(m.snapshot().empty());
  m.add("c", 7);
  EXPECT_EQ(m.snapshot().counters.at("c"), 7u);
}

TEST(Metrics, SnapshotWhileWritersRun) {
  Metrics m;
  m.set_enabled(true);
  std::thread writer([&] {
    for (int i = 0; i < 10000; ++i) m.add("spin");
  });
  // Concurrent snapshots must never crash or deadlock against the writer.
  for (int i = 0; i < 100; ++i) (void)m.snapshot();
  writer.join();
  EXPECT_EQ(m.snapshot().counters.at("spin"), 10000u);
}

// ------------------------------------------------------------- Tracing --

TEST(Trace, DisabledTracerRecordsNoEvents) {
  Tracer t;
  {
    Span s("never", "test", &t);
    s.arg("k", std::int64_t{1});
  }
  EXPECT_EQ(t.n_events(), 0u);
}

TEST(Trace, SpansRecordCompleteEvents) {
  Tracer t;
  t.set_enabled(true);
  {
    Span outer("outer", "test", &t);
    outer.arg("design", std::string("small"));
    Span inner("inner", "test", &t);
    inner.arg("iter", std::int64_t{3});
  }
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 2u);
  // Destruction order: inner closes first.
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[1].name, "outer");
  EXPECT_GE(evs[1].dur_us, evs[0].dur_us);
  EXPECT_EQ(evs[0].args.at(0).first, "iter");
}

TEST(Trace, ChromeJsonIsWellFormedAndComplete) {
  Tracer t;
  t.set_enabled(true);
  { Span s("alpha", "test", &t); }
  { Span s("beta", "test", &t); }
  const JsonValue doc = json_parse(t.chrome_trace_json());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> span_names;
  int meta = 0;
  for (const JsonValue& e : events->items()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      continue;
    }
    EXPECT_EQ(ph, "X");
    span_names.insert(e.find("name")->as_string());
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("dur"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  EXPECT_GE(meta, 2);  // process_name + at least one thread_name
  EXPECT_EQ(span_names, (std::set<std::string>{"alpha", "beta"}));
}

TEST(Trace, WorkersGetDistinctTracks) {
  Tracer t;
  t.set_enabled(true);
  Parallelism par;
  par.n_threads = 4;
  parallel_for(4, par, [&](std::size_t begin, std::size_t end) {
    Span s("chunk", "test", &t);
    s.arg("begin", static_cast<std::int64_t>(begin));
    s.arg("end", static_cast<std::int64_t>(end));
  });
  std::set<int> tids;
  for (const TraceEvent& e : t.events()) tids.insert(e.tid);
  EXPECT_GE(tids.size(), 1u);
  EXPECT_EQ(t.n_events(), 4u);
}

// ---------------------------------------------------------- FlowReport --

FlowReport sample_report() {
  FlowReport r;
  r.flow = "secure";
  r.design = "small";
  r.completed_through = "extraction";
  r.n_threads = 4;
  r.cells = 96;
  r.cell_area_um2 = 1782.95;
  r.die_area_um2 = 4361.55;
  r.wirelength_um = 965.44;
  r.vias = 150;
  r.route_nets = 29;
  r.route_iterations = 2;
  r.critical_delay_ps = 539.685;
  r.total_ms = 25.8;
  for (const char* name : {"synthesis", "substitution", "placement",
                           "routing", "decomposition", "extraction"}) {
    StageEntry e;
    e.name = name;
    e.ms = 1.25;
    e.cache = "miss";
    e.cache_key = "00000000deadbeef";
    r.stages.push_back(e);
  }
  r.secure.present = true;
  r.secure.fat_cells = 24;
  r.secure.diff_cells = 96;
  r.secure.inverters_removed = 4;
  r.secure.lec_equivalent = true;
  r.secure.lec_points = 8;
  r.secure.stream_check_ok = true;
  r.dpa.present = true;
  r.dpa.n_measurements = 2000;
  r.dpa.best_guess = 46;
  r.dpa.disclosed = false;
  r.dpa.best_peak = 0.5;
  r.dpa.runner_up_peak = 0.45;
  r.dpa.mean_cycle_energy_pj = 12.5;
  r.metrics.counters["pnr.route.iterations"] = 2;
  r.metrics.gauges["work.peak"] = 3.5;
  HistogramStat h;
  h.observe(1.0);
  h.observe(2.0);
  r.metrics.histograms["work.size"] = h;
  return r;
}

TEST(FlowReport, JsonRoundTrip) {
  const FlowReport r = sample_report();
  const std::string json = flow_report_json(r);
  const FlowReport back = parse_flow_report(json);
  EXPECT_EQ(r, back);
}

TEST(FlowReport, ValidatorAcceptsBothFlowKinds) {
  FlowReport r = sample_report();
  validate_flow_report(json_parse(flow_report_json(r)));
  r.flow = "regular";
  r.secure = SecureSection{};
  r.dpa = DpaSection{};
  r.metrics = MetricsSnapshot{};
  validate_flow_report(json_parse(flow_report_json(r)));
}

TEST(FlowReport, ValidatorRejectsSchemaViolations) {
  const std::string good = flow_report_json(sample_report());

  JsonValue bad_schema = json_parse(good);
  bad_schema.set("schema", JsonValue("secflow.flow-report/999"));
  EXPECT_THROW(validate_flow_report(bad_schema), Error);

  JsonValue bad_flow = json_parse(good);
  bad_flow.set("flow", JsonValue("hybrid"));
  EXPECT_THROW(validate_flow_report(bad_flow), Error);

  JsonValue no_stages = json_parse(good);
  no_stages.set("stages", JsonValue::array());
  EXPECT_THROW(validate_flow_report(no_stages), Error);

  JsonValue bad_verdict = json_parse(good);
  bad_verdict.find("stages")->items()[0].set("cache", JsonValue("maybe"));
  EXPECT_THROW(validate_flow_report(bad_verdict), Error);

  JsonValue bad_key = json_parse(good);
  bad_key.find("stages")->items()[0].set("cache_key", JsonValue("zz"));
  EXPECT_THROW(validate_flow_report(bad_key), Error);
}

TEST(FlowReport, AttachMetricsFoldsSnapshot) {
  Metrics m;
  m.set_enabled(true);
  m.add("x", 3);
  FlowReport r = sample_report();
  attach_metrics(r, m.snapshot());
  EXPECT_EQ(r.metrics.counters.at("x"), 3u);
}

// ----------------------------------------------- Flow integration ------

constexpr const char* kSmallDesign = R"(
  module small (input clk, input [3:0] a, input [3:0] b, output [3:0] y);
    reg [3:0] r;
    wire [3:0] m;
    assign m = (a & b) ^ r;
    always @(posedge clk) r <= m | a;
    assign y = r ^ b;
  endmodule)";

TEST(ObsFlow, ArtifactsBitIdenticalWithObservabilityOnOrOff) {
  const auto lib = builtin_stdcell018();
  const AigCircuit circuit = parse_hdl(kSmallDesign);

  // Baseline: observability fully off.
  Tracer::global().set_enabled(false);
  Metrics::global().set_enabled(false);
  FlowOptions opts;
  const SecureFlowResult off = run_secure_flow(circuit, lib, opts);

  // Everything on: tracing, metrics, trace-level logging to a null sink.
  Tracer::global().set_enabled(true);
  Tracer::global().clear();
  Metrics::global().set_enabled(true);
  const LogLevel saved = Logger::global().level();
  Logger::global().set_sink([](LogLevel, std::string_view) {});
  opts.log_level = LogLevel::kTrace;
  const SecureFlowResult on = run_secure_flow(circuit, lib, opts);
  Tracer::global().set_enabled(false);
  Metrics::global().set_enabled(false);
  Logger::global().set_sink(nullptr);
  Logger::global().set_level(saved);

  // Byte-for-byte identical serialized artifacts.
  EXPECT_EQ(write_verilog(off.rtl), write_verilog(on.rtl));
  EXPECT_EQ(write_verilog(off.fat), write_verilog(on.fat));
  EXPECT_EQ(write_verilog(off.diff), write_verilog(on.diff));
  EXPECT_EQ(write_def(off.fat_def), write_def(on.fat_def));
  EXPECT_EQ(write_def(off.def), write_def(on.def));
  EXPECT_EQ(off.timing.critical_delay_ps, on.timing.critical_delay_ps);

  // The traced run produced one span per pipeline stage plus the router /
  // placer sub-spans, and the metrics counted the router's work.
  std::set<std::string> names;
  for (const TraceEvent& e : Tracer::global().events()) names.insert(e.name);
  for (const char* stage :
       {"flow.secure", "flow.synthesis", "flow.substitution",
        "flow.placement", "flow.routing", "flow.decomposition",
        "flow.extraction", "place.sa", "route.iteration"}) {
    EXPECT_TRUE(names.contains(stage)) << "missing span " << stage;
  }
  const MetricsSnapshot s = Metrics::global().snapshot();
  EXPECT_GT(s.counters.at("pnr.route.iterations"), 0u);
  EXPECT_GT(s.counters.at("pnr.route.nets_routed"), 0u);
  EXPECT_GT(s.counters.at("pnr.place.sa_batches"), 0u);

  // And the trace exports as valid Chrome trace-event JSON.
  const JsonValue doc = json_parse(Tracer::global().chrome_trace_json());
  EXPECT_GT(doc.find("traceEvents")->items().size(), 6u);
  Tracer::global().clear();
  Metrics::global().reset();
}

TEST(ObsFlow, BuildFlowReportValidatesAgainstSchema) {
  const auto lib = builtin_stdcell018();
  const AigCircuit circuit = parse_hdl(kSmallDesign);
  FlowOptions opts;
  const SecureFlowResult r = run_secure_flow(circuit, lib, opts);
  FlowReport rep = build_flow_report(r);
  EXPECT_EQ(rep.flow, "secure");
  EXPECT_EQ(rep.design, "small");
  EXPECT_EQ(rep.completed_through, "extraction");
  EXPECT_EQ(rep.stages.size(), static_cast<std::size_t>(kNumFlowStages));
  EXPECT_TRUE(rep.secure.present);
  EXPECT_TRUE(rep.secure.lec_equivalent);
  EXPECT_GT(rep.cells, 0u);
  EXPECT_GT(rep.route_iterations, 0);
  validate_flow_report(json_parse(flow_report_json(rep)));
  EXPECT_EQ(parse_flow_report(flow_report_json(rep)), rep);
}

}  // namespace
}  // namespace secflow
