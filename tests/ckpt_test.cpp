// Unit tests for the checkpoint subsystem: content hashing, the artifact
// container, every stage serializer (save -> load -> save byte-identical;
// netlists additionally load back LEC-equivalent), and the content-addressed
// store.
#include "ckpt/artifact.h"
#include "ckpt/fingerprint.h"
#include "ckpt/hash.h"
#include "ckpt/serialize.h"
#include "ckpt/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "base/error.h"
#include "lec/lec.h"
#include "liberty/builtin_lib.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

namespace fs = std::filesystem;

// --- hashing ---------------------------------------------------------------

TEST(Hash, IsStableAcrossRuns) {
  // Pinned value: the cache keys on disk depend on this never changing.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a"), Hasher().bytes("a", 1).digest());
  EXPECT_EQ(Hasher().add(std::uint64_t{1}).digest(),
            Hasher().add(std::uint64_t{1}).digest());
}

TEST(Hash, LengthPrefixPreventsConcatenationCollisions) {
  EXPECT_NE(Hasher().add("ab").add("c").digest(),
            Hasher().add("a").add("bc").digest());
  EXPECT_NE(Hasher().add("").add("x").digest(),
            Hasher().add("x").add("").digest());
}

TEST(Hash, DoublesHashByBitPattern) {
  EXPECT_EQ(Hasher().add(0.1).digest(), Hasher().add(0.1).digest());
  EXPECT_NE(Hasher().add(0.1).digest(), Hasher().add(0.2).digest());
  EXPECT_NE(Hasher().add(0.0).digest(), Hasher().add(-0.0).digest());
  EXPECT_NE(Hasher().add(1.0).digest(),
            Hasher().add(std::int64_t{1}).digest());
}

TEST(Hash, HexRoundTrips) {
  for (const std::uint64_t v : {0ull, 1ull, 0xdeadbeefcafef00dull,
                                ~0ull}) {
    const std::string hex = hash_hex(v);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(parse_hash_hex(hex), v);
  }
  EXPECT_THROW(parse_hash_hex("xyz"), ParseError);
  EXPECT_THROW(parse_hash_hex("123"), ParseError);          // wrong width
  EXPECT_THROW(parse_hash_hex("00000000deadbeeZ"), ParseError);
}

// --- artifact container ----------------------------------------------------

Artifact sample_artifact() {
  Artifact a("routing", 0x1234abcd5678ef90ull);
  a.add("routed.def", "DESIGN x ;\nEND\n");
  a.add("route_stats", "ROUTESTATS 1 2 3 4\n");
  a.add("empty", "");
  return a;
}

TEST(ArtifactContainer, RoundTripsByteIdentical) {
  const Artifact a = sample_artifact();
  const std::string bytes = write_artifact(a);
  const Artifact b = parse_artifact(bytes);
  EXPECT_EQ(b.kind, a.kind);
  EXPECT_EQ(b.key, a.key);
  ASSERT_EQ(b.sections, a.sections);
  EXPECT_EQ(write_artifact(b), bytes);
}

TEST(ArtifactContainer, SectionLookup) {
  const Artifact a = sample_artifact();
  EXPECT_EQ(a.section("route_stats"), "ROUTESTATS 1 2 3 4\n");
  EXPECT_EQ(a.find_section("nope"), nullptr);
  EXPECT_THROW(a.section("nope"), Error);
}

TEST(ArtifactContainer, RejectsTruncationAtEveryByte) {
  // Chopping the container anywhere must throw, never return partial data.
  const std::string bytes = write_artifact(sample_artifact());
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    EXPECT_THROW(parse_artifact(bytes.substr(0, n)), ParseError)
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(ArtifactContainer, RejectsCorruption) {
  const std::string bytes = write_artifact(sample_artifact());
  // Flip one payload byte: framing still parses, checksum must catch it.
  std::string flipped = bytes;
  flipped[bytes.find("DESIGN x")] = 'Z';
  EXPECT_THROW(parse_artifact(flipped), ParseError);
  // Unknown keyword.
  EXPECT_THROW(parse_artifact("SECFLOW-CKPT 1 k 0000000000000000\nBOGUS\n"),
               ParseError);
  // Not a checkpoint file at all.
  EXPECT_THROW(parse_artifact("v1.0 design\n"), ParseError);
  EXPECT_THROW(parse_artifact(""), ParseError);
}

TEST(ArtifactContainer, RejectsVersionSkew) {
  std::string bytes = write_artifact(sample_artifact());
  bytes.replace(bytes.find(" 1 "), 3, " 99 ");
  EXPECT_THROW(parse_artifact(bytes), ParseError);
}

// --- serializer round trips ------------------------------------------------

/// save -> load -> save must be byte-identical: the golden-file tests and
/// the "hit produces the same artifact" guarantee both stand on this.
template <typename T, typename W, typename P>
void expect_second_generation_identical(const T& value, W write, P parse) {
  const std::string bytes = write(value);
  const T loaded = parse(bytes);
  EXPECT_EQ(write(loaded), bytes);
}

TEST(Serialize, CellLibraryRoundTrips) {
  const auto lib = builtin_stdcell018();
  expect_second_generation_identical(*lib, write_cell_library,
                                     parse_cell_library);
  const CellLibrary back = parse_cell_library(write_cell_library(*lib));
  EXPECT_EQ(back.size(), lib->size());
  for (const CellTypeId id : lib->all()) {
    const CellType& a = lib->cell(id);
    const CellType& b = back.cell(back.find(a.name));
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.function, a.function);
    EXPECT_EQ(b.pins.size(), a.pins.size());
    EXPECT_EQ(b.area_um2, a.area_um2);            // exact, not near
    EXPECT_EQ(b.intrinsic_delay_ps, a.intrinsic_delay_ps);
    EXPECT_EQ(b.drive_res_kohm, a.drive_res_kohm);
    EXPECT_EQ(b.negedge_clock, a.negedge_clock);
  }
}

TEST(Serialize, FatCellLibraryRoundTrips) {
  // The substitution checkpoint serializes the lazily-built fat library;
  // compound cells (wide SOP functions, multi-pin) must survive exactly.
  const auto lib = builtin_stdcell018();
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, input s, output y, output z);
      assign y = s ? (a & b) : (a ^ b);
      assign z = ~(a | s);
    endmodule)");
  SynthConstraints sc;
  sc.allowed_cells = {"NAND2", "NOR2", "XOR2", "AOI22", "OAI21", "MUX2"};
  const Netlist rtl = technology_map(c, lib, sc);
  WddlLibrary wlib(lib);
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  expect_second_generation_identical(*wlib.fat_library(), write_cell_library,
                                     parse_cell_library);
  // A reparsed fat library must still parse the fat netlist it came with.
  const auto fat_lib = std::make_shared<const CellLibrary>(
      parse_cell_library(write_cell_library(*wlib.fat_library())));
  const Netlist refat = parse_verilog(write_verilog(sub.fat), fat_lib);
  EXPECT_EQ(refat.n_instances(), sub.fat.n_instances());
}

TEST(Serialize, NetlistLoadsBackLecEquivalent) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, input cin, output s, output cout);
      assign s = a ^ b ^ cin;
      assign cout = (a & b) | (cin & (a ^ b));
    endmodule)");
  const Netlist rtl = technology_map(c, lib, {});
  const std::string v = write_verilog(rtl);
  const Netlist back = parse_verilog(v, lib);
  back.validate();
  EXPECT_EQ(write_verilog(back), v);  // byte-identical second generation
  const LecResult lec = check_equivalence(rtl, back);
  EXPECT_TRUE(lec.equivalent);
  EXPECT_GT(lec.compared_points, 0);
}

TEST(Serialize, ExtractionRoundTrips) {
  Extraction ex;
  NetParasitics a;
  a.wire_cap_ff = 1.25;
  a.pin_cap_ff = 0.1;
  a.coupling_cap_ff = 0.7500000000000001;  // needs all 17 digits
  a.res_kohm = 0.033;
  a.couplings = {{"n2", 0.5}, {"n3", 0.25}};
  ex.nets["n1"] = a;
  ex.nets["n2"] = NetParasitics{};
  expect_second_generation_identical(ex, write_extraction, parse_extraction);
  const Extraction back = parse_extraction(write_extraction(ex));
  ASSERT_EQ(back.nets.size(), 2u);
  EXPECT_EQ(back.nets.at("n1").coupling_cap_ff, a.coupling_cap_ff);
  ASSERT_EQ(back.nets.at("n1").couplings.size(), 2u);
  EXPECT_EQ(back.nets.at("n1").couplings[0].first, "n2");
}

TEST(Serialize, CapTableRoundTrips) {
  CapTable caps{{"x", 1.5}, {"clk", 0.1}, {"y_t", 2.7182818284590452}};
  expect_second_generation_identical(caps, write_cap_table, parse_cap_table);
  const CapTable back = parse_cap_table(write_cap_table(caps));
  EXPECT_EQ(back, caps);
}

TEST(Serialize, TimingReportRoundTrips) {
  TimingReport r;
  r.critical_delay_ps = 1234.5678;
  r.min_period_ps = 2469.1356;
  r.endpoint = "net with spaces";
  r.critical_path = {{"u1", "n1", 10.5}, {"", "n2", 20.25}};
  r.net_arrival_ps = {0.0, 1.5, 33.25};
  expect_second_generation_identical(r, write_timing_report,
                                     parse_timing_report);
  const TimingReport back = parse_timing_report(write_timing_report(r));
  EXPECT_EQ(back.endpoint, r.endpoint);
  ASSERT_EQ(back.critical_path.size(), 2u);
  EXPECT_EQ(back.critical_path[1].instance, "");
  EXPECT_EQ(back.net_arrival_ps, r.net_arrival_ps);
}

TEST(Serialize, SmallStructsRoundTrip) {
  RouteStats rs;
  rs.wirelength_dbu = 123456789012345ll;
  rs.vias = 42;
  rs.nets_routed = 7;
  rs.iterations = 3;
  rs.expanded_nodes = 987654321098ll;
  rs.window_escalations = 11;
  rs.full_grid_searches = 2;
  rs.nets_ripped = 5001;
  expect_second_generation_identical(rs, write_route_stats,
                                     parse_route_stats);
  EXPECT_EQ(parse_route_stats(write_route_stats(rs)).wirelength_dbu,
            rs.wirelength_dbu);

  SubstitutionStats ss;
  ss.inverters_removed = 5;
  ss.gates_substituted = 9;
  ss.port_buffers_added = 2;
  expect_second_generation_identical(ss, write_substitution_stats,
                                     parse_substitution_stats);

  LecResult lec;
  lec.equivalent = false;
  lec.compared_points = 12;
  lec.mismatches = {{"output y differs", "a=1 b=0"}};
  expect_second_generation_identical(lec, write_lec_result,
                                     parse_lec_result);
  EXPECT_EQ(parse_lec_result(write_lec_result(lec)).mismatches[0].what,
            "output y differs");

  CheckResult cr;
  cr.ok = true;
  cr.nets_checked = 31;
  cr.pins_checked = 77;
  expect_second_generation_identical(cr, write_check_result,
                                     parse_check_result);

  EnergyStats es;
  es.mean_pj = 27.1;
  es.ned = 0.066;
  es.nsd = 0.009;
  expect_second_generation_identical(es, write_energy_stats,
                                     parse_energy_stats);

  DpaResult dr;
  dr.n_measurements = 2000;
  dr.best_guess = 46;
  dr.disclosed = true;
  dr.peak_to_peak = {0.5, 1.25, 0.75};
  expect_second_generation_identical(dr, write_dpa_result,
                                     parse_dpa_result);
}

TEST(Serialize, ParsersRejectMalformedInput) {
  // Wrong magic keyword.
  EXPECT_THROW(parse_cap_table("EXTRACTION 0\n"), ParseError);
  // Truncated mid-record.
  EXPECT_THROW(parse_cap_table("CAPTABLE 2\nCAP x 1.0\n"), ParseError);
  EXPECT_THROW(parse_extraction("EXTRACTION 1\nNET n 1 2 3"), ParseError);
  EXPECT_THROW(parse_route_stats("ROUTESTATS 1 2 3 4 5"), ParseError);
  // Trailing garbage.
  EXPECT_THROW(parse_route_stats("ROUTESTATS 1 2 3 4 5 6 7 8 9\n"),
               ParseError);
  // Non-boolean flag.
  EXPECT_THROW(parse_lec_result("LEC 2 0 0\n"), ParseError);
  // Bad sized-string framing.
  EXPECT_THROW(parse_timing_report("TIMING 1 2 99:short\nPATH 0\n"
                                   "ARRIVALS 0\n"),
               ParseError);
  // Duplicate net.
  EXPECT_THROW(parse_cap_table("CAPTABLE 2\nCAP x 1\nCAP x 2\n"),
               ParseError);
  // Cell library with an out-of-range kind.
  EXPECT_THROW(parse_cell_library("CELLLIB 1:l 1\nCELL X 9 0 1 "
                                  "0000000000000002 1 1 1 1 1 1 0\n"),
               ParseError);
}

// --- content-addressed store -----------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "ckpt_store_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(StoreTest, SaveLoadRoundTrips) {
  ArtifactStore store(dir_.string());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.contains("routing", 7));
  EXPECT_EQ(store.load("routing", 7), std::nullopt);

  Artifact a("routing", 7);
  a.add("routed.def", "bytes");
  store.save(a);
  EXPECT_TRUE(store.contains("routing", 7));
  EXPECT_EQ(store.size(), 1u);
  const auto b = store.load("routing", 7);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->section("routed.def"), "bytes");
  // Different stage or key: distinct address, no entry.
  EXPECT_FALSE(store.contains("placement", 7));
  EXPECT_FALSE(store.contains("routing", 8));
}

TEST_F(StoreTest, PathEncodesStageAndKey) {
  ArtifactStore store(dir_.string());
  const std::string p = store.path_for("synthesis", 0xabcull);
  EXPECT_NE(p.find("synthesis-0000000000000abc.ckpt"), std::string::npos);
}

TEST_F(StoreTest, CorruptEntryReadsAsMiss) {
  ArtifactStore store(dir_.string());
  Artifact a("synthesis", 3);
  a.add("rtl.v", "module m; endmodule");
  store.save(a);
  // Truncate the file on disk: load degrades to a miss (recompute), while
  // the strict parser reports the corruption.
  const std::string path = store.path_for("synthesis", 3);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_EQ(store.load("synthesis", 3), std::nullopt);
  EXPECT_THROW(parse_artifact_file(path), ParseError);
}

TEST_F(StoreTest, MislabeledEntryReadsAsMiss) {
  ArtifactStore store(dir_.string());
  Artifact a("synthesis", 3);
  a.add("rtl.v", "x");
  // A valid artifact parked under the wrong address must not be served.
  fs::create_directories(dir_);
  write_artifact_file(a, store.path_for("routing", 9));
  EXPECT_EQ(store.load("routing", 9), std::nullopt);
}

// --- fingerprints ----------------------------------------------------------

TEST(Fingerprint, TracksContentNotThreads) {
  PlaceOptions p1, p2;
  p2.parallelism.n_threads = 8;
  EXPECT_EQ(fingerprint(p1), fingerprint(p2));  // threads excluded
  p2.sa_moves_per_instance = p1.sa_moves_per_instance + 1;
  EXPECT_NE(fingerprint(p1), fingerprint(p2));

  RouteOptions r1, r2;
  r2.verbose = true;
  EXPECT_EQ(fingerprint(r1), fingerprint(r2));  // logging excluded
  r2.parallelism.n_threads = 8;
  EXPECT_EQ(fingerprint(r1), fingerprint(r2));  // threads excluded: the
  // routed geometry is bit-identical at any thread count
  r2.via_cost = r1.via_cost + 1;
  EXPECT_NE(fingerprint(r1), fingerprint(r2));
  r2 = r1;
  r2.skip_nets = {"VSS"};
  EXPECT_NE(fingerprint(r1), fingerprint(r2));
  r2 = r1;
  r2.window_margin += 1;  // search schedule changes the geometry
  EXPECT_NE(fingerprint(r1), fingerprint(r2));
  r2 = r1;
  r2.window_escalation += 1;
  EXPECT_NE(fingerprint(r1), fingerprint(r2));
  r2 = r1;
  r2.incremental = false;
  EXPECT_NE(fingerprint(r1), fingerprint(r2));

  ExtractOptions e1, e2;
  e2.parallelism.n_threads = 4;
  EXPECT_EQ(fingerprint(e1), fingerprint(e2));
  e2.coupling_max_sep_um = 2.0;
  EXPECT_NE(fingerprint(e1), fingerprint(e2));

  SynthConstraints s1, s2;
  s2.allowed_cells = {"NAND2"};
  EXPECT_NE(fingerprint(s1), fingerprint(s2));
}

TEST(Fingerprint, CircuitAndLibraryAreStructural) {
  const auto lib = builtin_stdcell018();
  const AigCircuit a = parse_hdl(
      "module m (input a, input b, output y); assign y = a & b; endmodule");
  const AigCircuit a2 = parse_hdl(
      "module m (input a, input b, output y); assign y = a & b; endmodule");
  const AigCircuit b = parse_hdl(
      "module m (input a, input b, output y); assign y = a | b; endmodule");
  EXPECT_EQ(fingerprint(a), fingerprint(a2));  // same text, same hash
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_EQ(fingerprint(*lib), fingerprint(*builtin_stdcell018()));
}

}  // namespace
}  // namespace secflow
