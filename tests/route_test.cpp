// Router-core regression suite (DESIGN.md section 15) on the paper's DES
// module fat netlist — the workload whose 20K+ differential pairs motivate
// the throughput work:
//  * the default windowed + incremental + batch-parallel configuration is
//    DRC-clean (connectivity and shorts);
//  * the routed geometry is bit-identical at 1/2/4/8 threads;
//  * window escalation reaches the full grid and still converges clean,
//    so window pruning never costs completeness;
//  * the serial reroute-everything reference (incremental off) is equally
//    clean — the A/B pair the bench measures;
//  * the decomposed rails of the default geometry stay capacitance-
//    balanced, the security property that constrains rip-up discipline.
#include "pnr/route.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "base/units.h"
#include "crypto/des.h"
#include "extract/extract.h"
#include "flow/flow.h"
#include "lef/lef.h"
#include "liberty/builtin_lib.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"

namespace secflow {
namespace {

/// Shared fixture: synthesize, substitute and place the fat DES module
/// once per test binary (the placement is the expensive part), then route
/// the default configuration once — several tests inspect that geometry.
class RouterOnFatDes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto lib = builtin_stdcell018();
    Netlist rtl = technology_map(make_des_dpa_circuit(), lib,
                                 wddl_synth_constraints());
    wlib_ = std::make_shared<WddlLibrary>(lib);
    SubstitutionResult sub = substitute_cells(rtl, *wlib_);
    fat_ = new Netlist(std::move(sub.fat));
    LefGenOptions fat_gen;
    fat_gen.wire_scale = 2.0;
    fat_lef_ = new LefLibrary(generate_lef(*wlib_->fat_library(), fat_gen));
    placed_ = new DefDesign(place_design(*fat_, *fat_lef_));

    routed_ = new DefDesign(*placed_);
    RouteOptions opts;  // defaults: windowed, incremental, 1 thread (auto)
    opts.parallelism.n_threads = 1;
    default_stats_ = route_design(*fat_, *fat_lef_, *routed_, opts);
    default_def_ = write_def(*routed_);
  }
  static void TearDownTestSuite() {
    delete routed_;
    delete placed_;
    delete fat_lef_;
    delete fat_;
    routed_ = nullptr;
    placed_ = nullptr;
    fat_lef_ = nullptr;
    fat_ = nullptr;
    wlib_.reset();
  }

  /// Route a fresh copy of the placement under `opts`; returns the DEF.
  static DefDesign route_copy(const RouteOptions& opts, RouteStats* stats) {
    DefDesign def = *placed_;
    RouteStats rs = route_design(*fat_, *fat_lef_, def, opts);
    if (stats != nullptr) *stats = rs;
    return def;
  }

  static void expect_drc_clean(const DefDesign& def) {
    const std::int64_t pitch = fat_lef_->track_pitch_dbu();
    const CheckResult conn =
        check_connectivity(*fat_, *fat_lef_, def, 4 * pitch);
    EXPECT_TRUE(conn.ok) << (conn.issues.empty()
                                 ? std::string("no issue recorded")
                                 : conn.issues.front().net + ": " +
                                       conn.issues.front().what);
    const CheckResult shorts = check_shorts(def, pitch);
    EXPECT_TRUE(shorts.ok) << (shorts.issues.empty()
                                   ? std::string("no issue recorded")
                                   : shorts.issues.front().net + ": " +
                                         shorts.issues.front().what);
  }

  static std::shared_ptr<WddlLibrary> wlib_;
  static Netlist* fat_;
  static LefLibrary* fat_lef_;
  static DefDesign* placed_;
  static DefDesign* routed_;
  static RouteStats default_stats_;
  static std::string default_def_;
};

std::shared_ptr<WddlLibrary> RouterOnFatDes::wlib_;
Netlist* RouterOnFatDes::fat_ = nullptr;
LefLibrary* RouterOnFatDes::fat_lef_ = nullptr;
DefDesign* RouterOnFatDes::placed_ = nullptr;
DefDesign* RouterOnFatDes::routed_ = nullptr;
RouteStats RouterOnFatDes::default_stats_;
std::string RouterOnFatDes::default_def_;

TEST_F(RouterOnFatDes, DefaultConfigurationIsDrcClean) {
  EXPECT_GT(default_stats_.nets_routed, 100);
  EXPECT_GE(default_stats_.iterations, 1);
  EXPECT_GT(default_stats_.expanded_nodes, 0);
  EXPECT_GT(default_stats_.wirelength_dbu, 0);
  // Incremental rip-up engaged: later iterations reroute a strict subset.
  EXPECT_GT(default_stats_.nets_ripped, 0);
  EXPECT_LT(default_stats_.nets_ripped,
            static_cast<std::int64_t>(default_stats_.nets_routed) *
                default_stats_.iterations);
  expect_drc_clean(*routed_);
}

TEST_F(RouterOnFatDes, GeometryIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract (DESIGN.md section 15): spatially disjoint
  // batches routed concurrently, committed in fixed net order, so the
  // routed DEF is byte-identical at any SECFLOW_THREADS.
  for (const int n : {2, 4, 8}) {
    RouteOptions opts;
    opts.parallelism.n_threads = n;
    RouteStats rs;
    const DefDesign def = route_copy(opts, &rs);
    EXPECT_EQ(write_def(def), default_def_) << "threads=" << n;
    EXPECT_EQ(rs.expanded_nodes, default_stats_.expanded_nodes)
        << "threads=" << n;
    EXPECT_EQ(rs.iterations, default_stats_.iterations) << "threads=" << n;
  }
}

TEST_F(RouterOnFatDes, WindowEscalationReachesFullGridAndStaysClean) {
  // Start from the pin bounding box itself and jump straight to the full
  // grid on first escalation: congested nets must take that path, and the
  // result must still be complete and clean — windows prune work, never
  // completeness.
  RouteOptions opts;
  opts.parallelism.n_threads = 1;
  opts.window_margin = 0;
  opts.window_escalation = 1 << 20;
  RouteStats rs;
  const DefDesign def = route_copy(opts, &rs);
  EXPECT_GT(rs.window_escalations, 0);
  EXPECT_GT(rs.full_grid_searches, 0);
  EXPECT_EQ(rs.nets_routed, default_stats_.nets_routed);
  expect_drc_clean(def);
}

TEST_F(RouterOnFatDes, SerialReferenceIsDrcClean) {
  // incremental = false is the classic reroute-everything Gauss-Seidel
  // loop the bench uses as its A/B reference; it must produce legal
  // geometry too (it converges on different, more tightly packed paths).
  RouteOptions opts;
  opts.incremental = false;
  opts.window_margin = 1 << 20;  // full-grid windows
  RouteStats rs;
  const DefDesign def = route_copy(opts, &rs);
  EXPECT_EQ(rs.nets_routed, default_stats_.nets_routed);
  // Serial mode rips every net every iteration after the first, so its
  // rip count is exactly nets x (iterations - 1) — no subset selection.
  EXPECT_EQ(rs.nets_ripped,
            static_cast<std::int64_t>(rs.nets_routed) * (rs.iterations - 1));
  expect_drc_clean(def);
}

TEST_F(RouterOnFatDes, DecomposedRailsStayCapacitanceBalanced) {
  // The security property that constrains the rip-up discipline: after
  // decomposition the _t/_f rails must carry matched capacitance.  The
  // geometry is translation-identical (symmetry check), so any residual
  // mismatch is lateral coupling to other nets — the term the Jacobi
  // batch discipline keeps small (DESIGN.md section 15).
  const Process018 pr;
  const std::int64_t fine_pitch = um_to_dbu(pr.wire_pitch_um);
  const DefDesign diff = decompose_interconnect(
      *routed_, fine_pitch, um_to_dbu(pr.wire_width_um));
  EXPECT_TRUE(check_differential_symmetry(diff, fine_pitch).ok);

  // Extract wire + coupling caps only (the diff net names are absent from
  // the fat netlist, so no pin caps enter): the mismatch below is purely
  // the router's doing.
  const Extraction ex = extract_parasitics(diff, *fat_);
  const auto mismatch = rail_mismatch_ff(ex);
  ASSERT_FALSE(mismatch.empty());
  double worst = 0.0, sum = 0.0;
  for (const auto& [net, mm] : mismatch) {
    worst = std::max(worst, mm);
    sum += mm;
  }
  EXPECT_LT(worst, 20.0);
  EXPECT_LT(sum / static_cast<double>(mismatch.size()), 1.5);
}

}  // namespace
}  // namespace secflow
