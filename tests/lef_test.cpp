#include "lef/lef.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "lef/lef_io.h"
#include "liberty/builtin_lib.h"

namespace secflow {
namespace {

class LefTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> cells_ = builtin_stdcell018();
};

TEST_F(LefTest, GeneratesOneMacroPerCell) {
  const LefLibrary lef = generate_lef(*cells_, {});
  EXPECT_EQ(lef.n_macros(), cells_->size());
  EXPECT_EQ(lef.layers().size(), 5u);
  for (CellTypeId id : cells_->all()) {
    const CellType& c = cells_->cell(id);
    const LefMacro& m = lef.macro(c.name);
    EXPECT_EQ(m.width_dbu, um_to_dbu(c.width_um)) << c.name;
    EXPECT_EQ(m.height_dbu, um_to_dbu(c.height_um)) << c.name;
    EXPECT_EQ(m.pins.size(), c.pins.size()) << c.name;
  }
}

TEST_F(LefTest, LayerDirectionsAlternate) {
  const LefLibrary lef = generate_lef(*cells_, {});
  EXPECT_EQ(lef.layers()[0].dir, LayerDir::kHorizontal);
  EXPECT_EQ(lef.layers()[1].dir, LayerDir::kVertical);
  EXPECT_EQ(lef.layers()[2].dir, LayerDir::kHorizontal);
  EXPECT_EQ(lef.layers()[3].dir, LayerDir::kVertical);
  EXPECT_EQ(lef.layers()[4].dir, LayerDir::kHorizontal);
}

TEST_F(LefTest, PinsInsideMacroAndOnGrid) {
  const LefLibrary lef = generate_lef(*cells_, {});
  const std::int64_t pitch = lef.track_pitch_dbu();
  for (const LefMacro& m : lef.macros()) {
    for (const LefPin& p : m.pins) {
      EXPECT_GE(p.offset.x, 0) << m.name << '/' << p.name;
      EXPECT_LE(p.offset.x, m.width_dbu) << m.name << '/' << p.name;
      EXPECT_GE(p.offset.y, 0) << m.name << '/' << p.name;
      EXPECT_LE(p.offset.y, m.height_dbu) << m.name << '/' << p.name;
      EXPECT_EQ(p.offset.x % pitch, 0) << m.name << '/' << p.name;
      EXPECT_EQ(p.offset.y % pitch, 0) << m.name << '/' << p.name;
    }
  }
}

TEST_F(LefTest, PinsDoNotOverlapWithinMacro) {
  const LefLibrary lef = generate_lef(*cells_, {});
  for (const LefMacro& m : lef.macros()) {
    for (std::size_t i = 0; i < m.pins.size(); ++i) {
      for (std::size_t j = i + 1; j < m.pins.size(); ++j) {
        EXPECT_FALSE(m.pins[i].offset == m.pins[j].offset)
            << m.name << ": " << m.pins[i].name << " vs " << m.pins[j].name;
      }
    }
  }
}

TEST_F(LefTest, FatLibraryDoublesWireGeometry) {
  LefGenOptions normal;
  LefGenOptions fat;
  fat.wire_scale = 2.0;
  const LefLibrary nl = generate_lef(*cells_, normal);
  const LefLibrary fl = generate_lef(*cells_, fat);
  EXPECT_EQ(fl.track_pitch_dbu(), 2 * nl.track_pitch_dbu());
  EXPECT_EQ(fl.wire_width_dbu(), 2 * nl.wire_width_dbu());
  // Macros keep the same footprint; only the wire definition changes.
  EXPECT_EQ(fl.macro("INV").width_dbu, nl.macro("INV").width_dbu);
}

TEST_F(LefTest, FindPin) {
  const LefLibrary lef = generate_lef(*cells_, {});
  const LefMacro& inv = lef.macro("INV");
  ASSERT_NE(inv.find_pin("A"), nullptr);
  ASSERT_NE(inv.find_pin("Y"), nullptr);
  EXPECT_EQ(inv.find_pin("Z"), nullptr);
  EXPECT_EQ(inv.find_pin("A")->dir, PinDir::kInput);
  EXPECT_EQ(inv.find_pin("Y")->dir, PinDir::kOutput);
}

TEST_F(LefTest, UnknownMacroThrows) {
  const LefLibrary lef = generate_lef(*cells_, {});
  EXPECT_THROW(lef.macro("NOPE"), Error);
  EXPECT_FALSE(lef.has_macro("NOPE"));
  EXPECT_TRUE(lef.has_macro("NAND2"));
}

TEST_F(LefTest, TextRoundTrip) {
  const LefLibrary lef = generate_lef(*cells_, {});
  const std::string text = write_lef(lef);
  const LefLibrary back = parse_lef(text);
  EXPECT_EQ(back.n_macros(), lef.n_macros());
  EXPECT_EQ(back.layers().size(), lef.layers().size());
  for (std::size_t i = 0; i < lef.layers().size(); ++i) {
    EXPECT_EQ(back.layers()[i].name, lef.layers()[i].name);
    EXPECT_EQ(back.layers()[i].dir, lef.layers()[i].dir);
    EXPECT_DOUBLE_EQ(back.layers()[i].pitch_um, lef.layers()[i].pitch_um);
  }
  for (const LefMacro& m : lef.macros()) {
    const LefMacro& b = back.macro(m.name);
    EXPECT_EQ(b.width_dbu, m.width_dbu) << m.name;
    EXPECT_EQ(b.height_dbu, m.height_dbu) << m.name;
    ASSERT_EQ(b.pins.size(), m.pins.size()) << m.name;
    for (std::size_t i = 0; i < m.pins.size(); ++i) {
      EXPECT_EQ(b.pins[i].name, m.pins[i].name);
      EXPECT_EQ(b.pins[i].offset, m.pins[i].offset) << m.name;
    }
  }
}

TEST_F(LefTest, ParserRejectsGarbage) {
  EXPECT_THROW(parse_lef("WHAT IS THIS ;"), ParseError);
  EXPECT_THROW(parse_lef("MACRO X SIZE 1 BY"), Error);
  EXPECT_THROW(parse_lef("LAYER M1 COLOUR RED ; END M1"), ParseError);
}

}  // namespace
}  // namespace secflow
