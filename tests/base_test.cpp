#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "base/error.h"
#include "base/geometry.h"
#include "base/id.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/units.h"

namespace secflow {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    SECFLOW_CHECK(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, ParseErrorCarriesLocation) {
  ParseError e("file.v line 3", "bad token");
  EXPECT_STREQ(e.what(), "file.v line 3: bad token");
  EXPECT_EQ(e.where(), "file.v line 3");
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  struct TagA {};
  struct TagB {};
  Id<TagA> a(1);
  Id<TagB> b(1);
  static_assert(!std::is_same_v<decltype(a), decltype(b)>);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(Id<TagA>{}.valid());
  EXPECT_EQ(a.value(), 1);
}

TEST(Geometry, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, 1}), 8);
  EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Geometry, RectBasics) {
  Rect r{{0, 0}, {10, 20}};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 20}));
  EXPECT_FALSE(r.contains({11, 5}));
  EXPECT_EQ(r.center(), (Point{5, 10}));
}

TEST(Geometry, RectOverlapAndInflate) {
  Rect a{{0, 0}, {10, 10}};
  Rect b{{5, 5}, {15, 15}};
  Rect c{{20, 20}, {30, 30}};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.inflated(15).overlaps(c));
  EXPECT_EQ(a.inflated(2), (Rect{{-2, -2}, {12, 12}}));
}

TEST(Geometry, SpanningNormalises) {
  EXPECT_EQ(Rect::spanning({5, 1}, {2, 9}), (Rect{{2, 1}, {5, 9}}));
}

TEST(Geometry, BoundingBox) {
  EXPECT_EQ(bounding_box({}), (Rect{}));
  EXPECT_EQ(bounding_box({{1, 2}, {-3, 9}, {4, 0}}),
            (Rect{{-3, 0}, {4, 9}}));
}

TEST(Geometry, SegmentOrientation) {
  Segment h{{0, 5}, {10, 5}, 0, 280};
  Segment v{{3, 0}, {3, 7}, 1, 280};
  EXPECT_TRUE(h.horizontal());
  EXPECT_FALSE(h.vertical());
  EXPECT_TRUE(v.vertical());
  EXPECT_EQ(h.length(), 10);
  EXPECT_EQ(v.length(), 7);
  EXPECT_EQ(h.translated(0, 2), (Segment{{0, 7}, {10, 7}, 0, 280}));
}

TEST(Geometry, IntervalOverlap) {
  EXPECT_EQ(interval_overlap(0, 10, 5, 15), 5);
  EXPECT_EQ(interval_overlap(10, 0, 15, 5), 5);  // unordered inputs
  EXPECT_EQ(interval_overlap(0, 4, 5, 9), 0);
  EXPECT_EQ(interval_overlap(0, 10, 2, 8), 6);
}

TEST(Geometry, ParallelRunLength) {
  Segment a{{0, 0}, {100, 0}, 1, 280};
  Segment b{{50, 560}, {150, 560}, 1, 280};
  std::int64_t sep = 0;
  EXPECT_EQ(parallel_run_length(a, b, &sep), 50);
  EXPECT_EQ(sep, 560);
  // Different layer: no coupling.
  Segment c{{50, 560}, {150, 560}, 2, 280};
  EXPECT_EQ(parallel_run_length(a, c), 0);
  // Perpendicular: no coupling.
  Segment d{{50, -10}, {50, 10}, 1, 280};
  EXPECT_EQ(parallel_run_length(a, d), 0);
}

TEST(Units, DbuRoundTrip) {
  EXPECT_EQ(um_to_dbu(0.56), 560);
  EXPECT_EQ(um_to_dbu(1.0), 1000);
  EXPECT_DOUBLE_EQ(dbu_to_um(560), 0.56);
  EXPECT_EQ(um_to_dbu(dbu_to_um(12345)), 12345);
}

TEST(Units, SwitchEnergy) {
  Process018 p;
  // 10 fF at 1.8 V: E = 10e-15 * 3.24 J = 32.4 fJ = 0.0324 pJ.
  EXPECT_NEAR(p.switch_energy_pj(10.0), 0.0324, 1e-9);
}

TEST(Units, SamplingSpec) {
  SamplingSpec s;
  EXPECT_DOUBLE_EQ(s.cycle_s(), 8e-9);
  EXPECT_DOUBLE_EQ(s.sample_dt_s(), 1e-11);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("  x y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(split("", ",").empty());
}

TEST(Strings, TrimAndStartsWith) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_12$"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("9x"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d/%s/%.2f", 3, "x", 1.5), "3/x/1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Parallel, ResolvedThreadsAlwaysPositive) {
  EXPECT_GE(Parallelism{}.resolved_threads(), 1);
  EXPECT_EQ((Parallelism{1}.resolved_threads()), 1);
  EXPECT_EQ((Parallelism{5}.resolved_threads()), 5);
  EXPECT_GE(default_thread_count(), 1);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, Parallelism{threads}, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Parallel, MapIsDeterministicAcrossThreadCounts) {
  auto run = [](int threads) {
    return parallel_map(512, Parallelism{threads}, [](std::size_t i) {
      // Stochastic body with a per-index stream: the parallel contract.
      Rng rng = Rng::stream(99, i);
      return rng.next_u64() ^ (i * 0x9E3779B97F4A7C15ull);
    });
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  EXPECT_THROW(parallel_for(100, Parallelism{4},
                            [&](std::size_t, std::size_t) {
                              throw Error("boom in chunk");
                            }),
               Error);
  // The pool survives a throwing batch and runs subsequent work.
  std::atomic<int> ran{0};
  parallel_for(100, Parallelism{4}, [&](std::size_t b, std::size_t e) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 100);
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock) {
  // Inner parallel_for on a pool worker must not wait on pool slots the
  // outer loop already occupies — it runs serial-inline instead.
  std::atomic<long> total{0};
  parallel_for(16, Parallelism{8}, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      parallel_for(50, Parallelism{8}, [&](std::size_t ib, std::size_t ie) {
        total.fetch_add(static_cast<long>(ie - ib));
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 50);
}

TEST(Parallel, MapResultsMatchSerialComputation) {
  const auto squares =
      parallel_map(100, Parallelism{4}, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(Rng, StreamsAreDeterministicAndIndependent) {
  // Same (seed, stream) -> same sequence.
  Rng a = Rng::stream(123, 7);
  Rng b = Rng::stream(123, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different streams of one seed must not collide or correlate trivially.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 256; ++s) {
    firsts.insert(Rng::stream(123, s).next_u64());
  }
  EXPECT_EQ(firsts.size(), 256u);
  // A different master seed reshuffles every stream.
  EXPECT_NE(Rng::stream(123, 0).next_u64(), Rng::stream(124, 0).next_u64());
}

}  // namespace
}  // namespace secflow
