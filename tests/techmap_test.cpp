#include "synth/techmap.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

class TechmapTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  /// Exhaustively (or randomly, for wide circuits) check that the mapped
  /// netlist computes the same function as the AIG, including registers.
  void check_equivalent(const AigCircuit& c, const Netlist& nl,
                        int cycles = 3, int vectors = 64) {
    nl.validate();
    FunctionalSim sim(nl);
    Rng rng(99);
    const std::size_t n_in = c.inputs.size();
    const bool exhaustive = n_in <= 10 && cycles == 1;
    const int n_vec = exhaustive ? (1 << n_in) : vectors;

    for (int v = 0; v < n_vec; ++v) {
      // AIG-side register state, reset to 0 at the start of each vector run.
      std::vector<bool> reg_state(c.regs.size(), false);
      // Netlist-side: fresh sim per vector for reset state.
      FunctionalSim s(nl);
      for (int cyc = 0; cyc < cycles; ++cyc) {
        std::vector<bool> vals(c.aig.n_nodes(), false);
        std::vector<std::pair<std::string, bool>> in_bits;
        for (std::size_t i = 0; i < c.inputs.size(); ++i) {
          const bool bit = exhaustive
                               ? ((static_cast<unsigned>(v) >> i) & 1) != 0
                               : rng.next_bool();
          vals[aig_node(c.inputs[i].lit)] = bit;
          in_bits.emplace_back(c.inputs[i].name, bit);
        }
        for (std::size_t i = 0; i < c.regs.size(); ++i) {
          vals[aig_node(c.regs[i].q)] = reg_state[i];
        }
        // Netlist side.
        for (const auto& [name, bit] : in_bits) s.set_input(name, bit);
        s.propagate();
        // Compare outputs.
        for (const CircuitBit& out : c.outputs) {
          EXPECT_EQ(s.output(out.name), c.aig.eval(out.lit, vals))
              << out.name << " vec " << v << " cycle " << cyc;
        }
        // Advance registers on both sides.
        if (!c.regs.empty()) {
          for (std::size_t i = 0; i < c.regs.size(); ++i) {
            reg_state[i] = c.aig.eval(c.regs[i].next, vals);
          }
          s.step_clock();
        }
      }
    }
  }
};

TEST_F(TechmapTest, MapsSimpleGates) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, output y);
      assign y = ~(a & b);
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  // A NAND should map to a single NAND2 (+ output BUF).
  const auto h = cell_histogram(nl);
  EXPECT_EQ(h.at("NAND2"), 1);
}

TEST_F(TechmapTest, MapsXor) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, output y);
      assign y = a ^ b;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  EXPECT_EQ(cell_histogram(nl).at("XOR2"), 1);
}

TEST_F(TechmapTest, MapsAoi32AsSingleCell) {
  // Paper Fig 2 function: Y = !((A0&A1&A2)|(B0&B1)).
  const AigCircuit c = parse_hdl(R"(
    module m (input a0, input a1, input a2, input b0, input b1, output y);
      assign y = ~((a0 & a1 & a2) | (b0 & b1));
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  EXPECT_EQ(cell_histogram(nl).at("AOI32"), 1);
}

TEST_F(TechmapTest, MapsMux) {
  const AigCircuit c = parse_hdl(R"(
    module m (input s, input d0, input d1, output y);
      assign y = s ? d1 : d0;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
}

TEST_F(TechmapTest, HandlesComplementedLeaves) {
  // f = a & ~b has no direct cell: needs phase handling.
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, output y);
      assign y = a & ~b;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
}

TEST_F(TechmapTest, ConstantsUseTies) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, output y, output z);
      assign y = a & ~a;
      assign z = a | ~a;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  const auto h = cell_histogram(nl);
  EXPECT_EQ(h.at("TIE0"), 1);
  EXPECT_EQ(h.at("TIE1"), 1);
}

TEST_F(TechmapTest, PassThroughUsesBuf) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, output y);
      assign y = a;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  EXPECT_EQ(cell_histogram(nl).at("BUF"), 1);
}

TEST_F(TechmapTest, SequentialCircuitGetsDffs) {
  const AigCircuit c = parse_hdl(R"(
    module m (input clk, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  EXPECT_EQ(nl.count_kind(CellKind::kFlop), 4);
  EXPECT_TRUE(nl.find_port("clk").valid());
  check_equivalent(c, nl, 4, 16);
}

TEST_F(TechmapTest, ConstraintRestrictsCellSet) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, output y);
      assign y = a ^ b;
    endmodule
  )");
  SynthConstraints cons;
  cons.allowed_cells = {"AND2", "OR2", "NAND2", "NOR2"};
  const Netlist nl = technology_map(c, lib_, cons);
  check_equivalent(c, nl, 1);
  const auto h = cell_histogram(nl);
  EXPECT_FALSE(h.contains("XOR2"));
  EXPECT_FALSE(h.contains("XNOR2"));
  EXPECT_FALSE(h.contains("AOI21"));
}

TEST_F(TechmapTest, RestrictedMappingStillCorrectOnRandomLogic) {
  // Random 4-input functions through a NAND/NOR-only library.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    CircuitBuilder cb("rnd");
    const auto in = cb.input("x", 4);
    // Random expression tree of depth 4.
    std::vector<AigLit> pool = in;
    for (int i = 0; i < 12; ++i) {
      const AigLit a = pool[rng.next_below(pool.size())];
      const AigLit b = pool[rng.next_below(pool.size())];
      AigLit r = 0;
      switch (rng.next_below(4)) {
        case 0: r = cb.aig().land(a, b); break;
        case 1: r = cb.aig().lor(a, b); break;
        case 2: r = cb.aig().lxor(a, b); break;
        default: r = aig_not(a); break;
      }
      pool.push_back(r);
    }
    cb.output("y", {pool.back()});
    const AigCircuit c = cb.take();
    SynthConstraints cons;
    cons.allowed_cells = {"NAND2", "NOR2"};
    const Netlist nl = technology_map(c, lib_, cons);
    check_equivalent(c, nl, 1);
    for (const auto& [cell, cnt] : cell_histogram(nl)) {
      // TIE cells appear when random logic folds to a constant.
      EXPECT_TRUE(cell == "NAND2" || cell == "NOR2" || cell == "INV" ||
                  cell == "BUF" || cell == "TIE0" || cell == "TIE1")
          << cell;
    }
  }
}

TEST_F(TechmapTest, AreaImprovesWithRicherLibrary) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a0, input a1, input a2, input b0, input b1, output y);
      assign y = ~((a0 & a1 & a2) | (b0 & b1));
    endmodule
  )");
  SynthConstraints nand_only;
  nand_only.allowed_cells = {"NAND2"};
  const Netlist rich = technology_map(c, lib_);
  const Netlist poor = technology_map(c, lib_, nand_only);
  EXPECT_LT(rich.total_area_um2(), poor.total_area_um2());
}

TEST_F(TechmapTest, SharedLogicIsReused) {
  const AigCircuit c = parse_hdl(R"(
    module m (input a, input b, output y, output z);
      wire t;
      assign t = a & b;
      assign y = t;
      assign z = ~t;
    endmodule
  )");
  const Netlist nl = technology_map(c, lib_);
  check_equivalent(c, nl, 1);
  // The AND cone is materialized once (one AND2 or NAND2, not two).
  const auto h = cell_histogram(nl);
  int and_like = 0;
  for (const auto& [name, cnt] : h) {
    if (name == "AND2" || name == "NAND2") and_like += cnt;
  }
  EXPECT_EQ(and_like, 1);
}

}  // namespace
}  // namespace secflow
