// Exhaustive conformance sweep over the full WDDL compound inventory:
// every base cell x every input-phase mask is driven through the real
// cell-substitution + differential-expansion pipeline as a one-gate design
// and checked against the single-ended reference for all input vectors,
// plus the precharge-propagation property.
#include <gtest/gtest.h>

#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

struct CellCase {
  std::string cell;
  unsigned mask;
};

void PrintTo(const CellCase& c, std::ostream* os) {
  *os << c.cell << "/m" << c.mask;
}

class WddlInventorySweep : public ::testing::TestWithParam<CellCase> {};

TEST_P(WddlInventorySweep, CompoundImplementsPhaseAdjustedFunction) {
  const auto lib = builtin_stdcell018();
  const CellType& cell = lib->cell(GetParam().cell);
  const unsigned mask = GetParam().mask;
  const int n = cell.n_inputs();
  ASSERT_LT(mask, 1u << n);

  // One-gate design: inputs x0..x{n-1}, with input i inverted when the
  // mask says so (the inverter dissolves into the compound's phase).
  Netlist rtl("one_" + cell.name + "_" + std::to_string(mask), lib);
  std::vector<NetId> gate_ins;
  for (int i = 0; i < n; ++i) {
    const NetId x = rtl.add_net("x" + std::to_string(i));
    rtl.add_port("x" + std::to_string(i), PinDir::kInput, x);
    if ((mask >> i) & 1u) {
      const NetId inv = rtl.add_net("xi" + std::to_string(i));
      add_gate(rtl, "INV", "inv" + std::to_string(i), {x}, inv);
      gate_ins.push_back(inv);
    } else {
      gate_ins.push_back(x);
    }
  }
  const NetId y = rtl.add_net("y");
  rtl.add_port("y", PinDir::kOutput, y);
  add_gate(rtl, cell.name, "g", gate_ins, y);
  rtl.validate();

  WddlLibrary wlib(lib);
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  // Exactly one compound plus the port buffer.
  EXPECT_LE(sub.fat.n_instances(), 2u);
  const Netlist diff = expand_differential(sub.fat, wlib);
  diff.validate();

  FunctionalSim ref(rtl);
  FunctionalSim sim(diff);
  for (unsigned v = 0; v < (1u << n); ++v) {
    for (int i = 0; i < n; ++i) {
      const bool bit = (v >> i) & 1u;
      ref.set_input("x" + std::to_string(i), bit);
      sim.set_input("x" + std::to_string(i) + "_t", bit);
      sim.set_input("x" + std::to_string(i) + "_f", !bit);
    }
    ref.propagate();
    sim.propagate();
    EXPECT_EQ(sim.output("y_t"), ref.output("y")) << "v=" << v;
    EXPECT_EQ(sim.output("y_f"), !ref.output("y")) << "v=" << v;
  }
  // Precharge: all rails low -> every net low.
  for (int i = 0; i < n; ++i) {
    sim.set_input("x" + std::to_string(i) + "_t", false);
    sim.set_input("x" + std::to_string(i) + "_f", false);
  }
  sim.propagate();
  for (NetId id : diff.net_ids()) {
    EXPECT_FALSE(sim.net_value(id)) << diff.net(id).name;
  }
}

std::vector<CellCase> all_cases() {
  const auto lib = builtin_stdcell018();
  std::vector<CellCase> cases;
  for (CellTypeId id : lib->all()) {
    const CellType& c = lib->cell(id);
    if (c.kind != CellKind::kCombinational) continue;
    if (c.name == "INV" || c.name == "BUF") continue;  // dissolve into swaps
    for (unsigned m = 0; m < (1u << c.n_inputs()); ++m) {
      cases.push_back(CellCase{c.name, m});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<CellCase>& info) {
  return info.param.cell + "_m" + std::to_string(info.param.mask);
}

INSTANTIATE_TEST_SUITE_P(AllCompounds, WddlInventorySweep,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace secflow
