// The statistical leakage-assessment subsystem: streaming accumulators
// against naive two-pass references, shard-and-merge determinism across
// thread counts, CPA / TVLA / MTD semantics on synthetic leakage, and the
// end-to-end DES assertion of the paper's headline claim — the secure
// flow's MTD exceeds the regular flow's under the same attack.
//
// The binary is registered once with ctest (not per-case) because the
// end-to-end cases share an expensive fixture: both flows on the DES
// module plus trace synthesis.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "base/rng.h"
#include "crypto/des.h"
#include "flow/flow.h"
#include "leakage/accumulators.h"
#include "leakage/assess.h"
#include "leakage/cpa.h"
#include "leakage/report.h"
#include "leakage/tvla.h"
#include "liberty/builtin_lib.h"
#include "obs/report.h"
#include "sca/selection.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

// ---------------------------------------------------------------------
// Accumulators vs naive two-pass references.

TEST(Moment, MatchesNaiveTwoPass) {
  Rng rng(7);
  std::vector<double> xs;
  Moment m;
  for (int i = 0; i < 1000; ++i) {
    const double x = 3.0 + 2.5 * rng.next_gaussian();
    xs.push_back(x);
    m.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(m.mean, mean, 1e-12);
  EXPECT_NEAR(m.variance(), var, 1e-9);
}

TEST(Moment, MergeEqualsSequentialAtEverySplit) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.next_gaussian());
  Moment whole;
  for (double x : xs) whole.add(x);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{99},
                            std::size_t{199}, std::size_t{200}}) {
    Moment a, b;
    for (std::size_t i = 0; i < split; ++i) a.add(xs[i]);
    for (std::size_t i = split; i < xs.size(); ++i) b.add(xs[i]);
    a.merge(b);
    EXPECT_EQ(a.n, whole.n);
    EXPECT_NEAR(a.mean, whole.mean, 1e-12);
    EXPECT_NEAR(a.m2, whole.m2, 1e-9);
  }
}

TEST(Moment, DegenerateCases) {
  Moment m;
  EXPECT_EQ(m.variance(), 0.0);
  m.add(5.0);
  EXPECT_EQ(m.mean, 5.0);
  EXPECT_EQ(m.variance(), 0.0);  // n < 2
  Moment empty;
  m.merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(m.n, 1u);
  EXPECT_EQ(m.mean, 5.0);
}

TEST(WelchAccumulator, MatchesClosedForm) {
  // Two known groups; t = (mf - mr) / sqrt(vf/nf + vr/nr) per sample.
  const std::vector<std::vector<double>> fixed = {
      {1.0, 10.0}, {2.0, 10.0}, {3.0, 10.0}};
  const std::vector<std::vector<double>> random = {
      {2.0, 10.0}, {4.0, 10.0}, {6.0, 10.0}, {8.0, 10.0}};
  WelchAccumulator acc(2);
  for (const auto& t : fixed) acc.add(true, t.data());
  for (const auto& t : random) acc.add(false, t.data());
  // Sample 0: fixed mean 2 var 1 (n 3); random mean 5 var 20/3 (n 4).
  const double expect = (2.0 - 5.0) / std::sqrt(1.0 / 3 + (20.0 / 3) / 4);
  const std::vector<double> t = acc.t_statistic();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NEAR(t[0], expect, 1e-12);
  // Sample 1: both classes constant — zero variance means no evidence,
  // not infinite evidence.
  EXPECT_EQ(t[1], 0.0);
}

TEST(WelchAccumulator, MergeMatchesSequential) {
  Rng rng(13);
  WelchAccumulator whole(4), a(4), b(4);
  std::vector<double> t(4);
  for (int i = 0; i < 300; ++i) {
    for (double& s : t) s = rng.next_gaussian();
    const bool fixed = (i % 2) == 0;
    whole.add(fixed, t.data());
    (i < 150 ? a : b).add(fixed, t.data());
  }
  a.merge(b);
  const std::vector<double> ta = a.t_statistic();
  const std::vector<double> tw = whole.t_statistic();
  for (std::size_t s = 0; s < 4; ++s) EXPECT_NEAR(ta[s], tw[s], 1e-9);
}

TEST(CpaAccumulator, CorrelationMatchesNaivePearson) {
  Rng rng(17);
  const int kGuesses = 3, kSamples = 2, kTraces = 500;
  CpaAccumulator acc(kGuesses, kSamples);
  std::vector<std::vector<double>> traces, hyps;
  for (int i = 0; i < kTraces; ++i) {
    std::vector<double> t(kSamples), h(kGuesses);
    const double secret = rng.next_gaussian();
    t[0] = secret + 0.3 * rng.next_gaussian();
    t[1] = rng.next_gaussian();
    h[0] = secret;                         // perfectly informed guess
    h[1] = 0.5 * secret + rng.next_gaussian();
    h[2] = rng.next_gaussian();            // uninformed guess
    acc.add(t.data(), h.data());
    traces.push_back(t);
    hyps.push_back(h);
  }
  auto naive = [&](int g, int s) {
    double mh = 0, mt = 0;
    for (int i = 0; i < kTraces; ++i) {
      mh += hyps[static_cast<std::size_t>(i)][static_cast<std::size_t>(g)];
      mt += traces[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)];
    }
    mh /= kTraces;
    mt /= kTraces;
    double c = 0, vh = 0, vt = 0;
    for (int i = 0; i < kTraces; ++i) {
      const double dh =
          hyps[static_cast<std::size_t>(i)][static_cast<std::size_t>(g)] - mh;
      const double dt =
          traces[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)] -
          mt;
      c += dh * dt;
      vh += dh * dh;
      vt += dt * dt;
    }
    return c / std::sqrt(vh * vt);
  };
  for (int g = 0; g < kGuesses; ++g) {
    for (int s = 0; s < kSamples; ++s) {
      EXPECT_NEAR(acc.correlation(g, s), naive(g, s), 1e-10)
          << "guess " << g << " sample " << s;
    }
  }
  // The informed guess dominates the distinguisher score.
  const std::vector<double> scores = acc.scores();
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(CpaAccumulator, NumericallyStableUnderLargeOffset) {
  // A huge common-mode offset would destroy a naive sum-of-products
  // implementation; the shifted co-moment recurrences keep full precision.
  Rng rng(19);
  CpaAccumulator acc(2, 1);
  std::vector<std::pair<double, double>> data;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.next_gaussian();
    const double t = 1e12 + x + 0.1 * rng.next_gaussian();
    const double h[2] = {x, 0.5};  // informed guess + constant dummy
    acc.add(&t, h);
    data.emplace_back(t, x);
  }
  // Reference correlation on the offset-free data (identical up to the
  // constant shift, which Pearson ignores).
  CpaAccumulator ref(2, 1);
  for (auto& [t, x] : data) {
    const double t0 = t - 1e12;
    const double h[2] = {x, 0.5};
    ref.add(&t0, h);
  }
  // The offset eats ~4 decimal digits of per-sample resolution; the
  // shifted recurrences keep the correlation within ~1e-5 of the
  // offset-free reference (a naive sum-of-products loses everything).
  EXPECT_NEAR(acc.correlation(0, 0), ref.correlation(0, 0), 1e-4);
  EXPECT_GT(acc.correlation(0, 0), 0.99);
}

// ---------------------------------------------------------------------
// Shard-and-merge determinism: bit-identical at any thread count.

std::vector<CpaMeasurement> synthetic_traces(int n, std::uint64_t seed) {
  std::vector<CpaMeasurement> traces;
  for (int i = 0; i < n; ++i) {
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
    CpaMeasurement m;
    m.ct = static_cast<std::uint32_t>(rng.next_below(1024));
    m.prev_ct = static_cast<std::uint32_t>(rng.next_below(1024));
    m.samples.resize(6);
    const double leak =
        hamming_weight(des_predict_pl(m.ct, 46)) - 2.0;
    for (std::size_t s = 0; s < m.samples.size(); ++s) {
      m.samples[s] = (s == 2 ? leak : 0.0) + rng.next_gaussian();
    }
    traces.push_back(std::move(m));
  }
  return traces;
}

TEST(Determinism, CpaBitIdenticalAcrossThreadCounts) {
  // 1100 traces span several 256-trace shards with a ragged tail.
  const std::vector<CpaMeasurement> traces = synthetic_traces(1100, 23);
  const HypothesisFn hyp = des_hypothesis(PowerModel::kHammingWeight);
  std::vector<std::vector<double>> per_thread_scores;
  for (int threads : {1, 2, 4, 8}) {
    CpaOptions opts;
    opts.parallelism.n_threads = threads;
    const CpaAccumulator acc = accumulate_cpa(traces, hyp, opts);
    per_thread_scores.push_back(acc.scores());
  }
  for (std::size_t i = 1; i < per_thread_scores.size(); ++i) {
    // Bitwise equality of every double, not approximate equality: the
    // shard width and merge order never depend on the thread count.
    EXPECT_EQ(per_thread_scores[i], per_thread_scores[0])
        << "thread count #" << i << " diverged";
  }
}

TEST(Determinism, TvlaBitIdenticalAcrossThreadCounts) {
  std::vector<TvlaTrace> traces;
  for (int i = 0; i < 700; ++i) {
    Rng rng = Rng::stream(29, static_cast<std::uint64_t>(i));
    TvlaTrace t;
    t.fixed = (i % 2) == 0;
    t.samples.resize(5);
    for (double& s : t.samples) {
      s = rng.next_gaussian() + (t.fixed ? 0.2 : 0.0);
    }
    traces.push_back(std::move(t));
  }
  std::vector<std::vector<double>> per_thread_t;
  for (int threads : {1, 2, 4, 8}) {
    TvlaOptions opts;
    opts.parallelism.n_threads = threads;
    per_thread_t.push_back(accumulate_tvla(traces, opts).t_statistic());
  }
  for (std::size_t i = 1; i < per_thread_t.size(); ++i) {
    EXPECT_EQ(per_thread_t[i], per_thread_t[0]);
  }
}

// ---------------------------------------------------------------------
// CPA ranking and MTD semantics on synthetic leakage.

TEST(CpaRanking, RankAndDisclosureSemantics) {
  CpaRanking r;
  r.scores = {0.1, 0.5, 0.3, 0.5};
  r.best_guess = 1;
  r.best_score = 0.5;
  r.runner_up_score = 0.5;
  EXPECT_EQ(r.rank_of(1), 1);  // ties broken toward the smaller index
  EXPECT_EQ(r.rank_of(3), 2);
  EXPECT_EQ(r.rank_of(2), 3);
  EXPECT_EQ(r.rank_of(0), 4);
  // A tie never discloses: the margin requires clear separation.
  EXPECT_FALSE(r.disclosed(1, 0.05));
  r.scores = {0.1, 0.5, 0.3, 0.2};
  r.runner_up_score = 0.3;
  EXPECT_TRUE(r.disclosed(1, 0.05));
  EXPECT_FALSE(r.disclosed(2, 0.05));  // wrong best guess
}

TEST(Mtd, SyntheticLeakDisclosesAndEarlyStops) {
  const HypothesisFn hyp = des_hypothesis(PowerModel::kHammingWeight);
  const std::vector<CpaMeasurement> pool = synthetic_traces(2000, 31);
  int fed_calls = 0;
  const TraceFeeder feeder = [&](int begin, int end) {
    ++fed_calls;
    return std::vector<CpaMeasurement>(pool.begin() + begin,
                                       pool.begin() + end);
  };
  MtdOptions mtd;
  mtd.max_traces = 2000;
  mtd.step = 100;
  mtd.persist = 3;
  const MtdResult r = estimate_mtd(feeder, hyp, 46, mtd);
  EXPECT_TRUE(r.disclosed);
  EXPECT_GT(r.mtd, 0);
  EXPECT_LE(r.mtd, r.traces_fed);
  // Early stop: the run ends persist-1 checkpoints after disclosure
  // began, not at the full budget.
  EXPECT_LT(r.traces_fed, mtd.max_traces);
  EXPECT_EQ(fed_calls, r.traces_fed / mtd.step);
  EXPECT_EQ(r.checkpoints.size(), r.ranks.size());
  EXPECT_EQ(r.ranks.back(), 1);
}

TEST(Mtd, PureNoiseStaysHidden) {
  const HypothesisFn hyp = des_hypothesis(PowerModel::kHammingWeight);
  const TraceFeeder feeder = [](int begin, int end) {
    std::vector<CpaMeasurement> batch;
    for (int i = begin; i < end; ++i) {
      Rng rng = Rng::stream(37, static_cast<std::uint64_t>(i));
      CpaMeasurement m;
      m.ct = static_cast<std::uint32_t>(rng.next_below(1024));
      m.prev_ct = static_cast<std::uint32_t>(rng.next_below(1024));
      m.samples = {rng.next_gaussian(), rng.next_gaussian()};
      batch.push_back(std::move(m));
    }
    return batch;
  };
  MtdOptions mtd;
  mtd.max_traces = 600;
  mtd.step = 200;
  const MtdResult r = estimate_mtd(feeder, hyp, 46, mtd);
  EXPECT_FALSE(r.disclosed);
  EXPECT_EQ(r.mtd, -1);
  EXPECT_EQ(r.traces_fed, 600);
}

TEST(Mtd, ExceedsComparison) {
  // mtd_exceeds(later, later_budget, earlier): does the secure flow
  // ("later") need more measurements than the regular one ("earlier")?
  EXPECT_TRUE(mtd_exceeds(500, 1000, 200));
  EXPECT_FALSE(mtd_exceeds(200, 1000, 500));
  EXPECT_FALSE(mtd_exceeds(200, 1000, 200));
  // Hidden at a budget covering the earlier MTD counts as exceeding.
  EXPECT_TRUE(mtd_exceeds(-1, 1000, 200));
  // Hidden at a smaller budget proves nothing.
  EXPECT_FALSE(mtd_exceeds(-1, 100, 200));
  // The earlier flow never disclosed: nothing can exceed it.
  EXPECT_FALSE(mtd_exceeds(-1, 1000, -1));
  EXPECT_FALSE(mtd_exceeds(500, 1000, -1));
}

TEST(Tvla, DetectsInjectedMeanShift) {
  std::vector<TvlaTrace> traces;
  for (int i = 0; i < 1000; ++i) {
    Rng rng = Rng::stream(41, static_cast<std::uint64_t>(i));
    TvlaTrace t;
    t.fixed = (i % 2) == 0;
    t.samples.resize(3);
    t.samples[0] = rng.next_gaussian();
    t.samples[1] = rng.next_gaussian() + (t.fixed ? 0.5 : 0.0);  // leak
    t.samples[2] = rng.next_gaussian();
    traces.push_back(std::move(t));
  }
  const WelchAccumulator acc = accumulate_tvla(traces, {});
  const std::vector<double> t = acc.t_statistic();
  EXPECT_GT(tvla_max_abs_t(acc), 4.5);
  const std::vector<std::size_t> leaky = tvla_leaky_samples(acc, 4.5);
  ASSERT_EQ(leaky.size(), 1u);
  EXPECT_EQ(leaky[0], 1u);
  EXPECT_GT(std::abs(t[1]), 4.5);
  EXPECT_LT(std::abs(t[0]), 4.5);
}

// ---------------------------------------------------------------------
// End to end on the paper's DES module: the headline claim.

class DesLeakage : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = builtin_stdcell018();
    const AigCircuit circuit = make_des_dpa_circuit();
    FlowOptions opts;
    regular_ = new RegularFlowResult(run_regular_flow(circuit, lib_, opts));
    secure_ = new SecureFlowResult(run_secure_flow(circuit, lib_, opts));
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  "secflow_leakage_test_ck")
                     .string();
    std::filesystem::remove_all(cache_dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(cache_dir_);
    delete regular_;
    delete secure_;
    regular_ = nullptr;
    secure_ = nullptr;
    lib_.reset();
  }

  /// The calibrated attack point (DESIGN.md §14): the Hamming-weight
  /// model targets value leakage — exactly what balanced differential
  /// routing suppresses — and 0.6 mA of measurement noise buries the
  /// secure flow's residual while the regular flow's signal survives.
  static LeakageSetup setup(int threads) {
    LeakageSetup s;
    s.design = "des_dpa";
    s.model = PowerModel::kHammingWeight;
    s.noise_ma = 0.6;
    s.tvla_traces = 200;
    s.cpa_traces = 400;
    s.mtd.max_traces = 600;
    s.mtd.step = 200;
    s.cache_dir = cache_dir_;
    s.parallelism.n_threads = threads;
    return s;
  }

  static LeakageReport assess_regular(int threads) {
    LeakageSetup s = setup(threads);
    s.base_key = regular_->timings.key(FlowStage::kExtraction);
    return assess_des_leakage(regular_->rtl, regular_->caps,
                              /*differential=*/false, s);
  }
  static LeakageReport assess_secure(int threads) {
    LeakageSetup s = setup(threads);
    s.base_key = secure_->timings.key(FlowStage::kExtraction);
    return assess_des_leakage(secure_->diff, secure_->caps,
                              /*differential=*/true, s);
  }

  static std::shared_ptr<const CellLibrary> lib_;
  static RegularFlowResult* regular_;
  static SecureFlowResult* secure_;
  static std::string cache_dir_;
};

std::shared_ptr<const CellLibrary> DesLeakage::lib_;
RegularFlowResult* DesLeakage::regular_ = nullptr;
SecureFlowResult* DesLeakage::secure_ = nullptr;
std::string DesLeakage::cache_dir_;

TEST_F(DesLeakage, CpaRecoversRegularButNotSecureKey) {
  const LeakageReport reg = assess_regular(0);
  const LeakageReport sec = assess_secure(0);

  // Regular flow: the subkey is recovered outright.
  ASSERT_TRUE(reg.cpa.present);
  EXPECT_EQ(reg.cpa.best_guess, 46);
  EXPECT_EQ(reg.cpa.correct_rank, 1);
  EXPECT_TRUE(reg.cpa.disclosed);

  // Secure flow, same attack, same trace count: the key stays hidden.
  ASSERT_TRUE(sec.cpa.present);
  EXPECT_EQ(sec.cpa.n_traces, reg.cpa.n_traces);
  EXPECT_GT(sec.cpa.correct_rank, 1);
  EXPECT_FALSE(sec.cpa.disclosed);

  // The paper's headline: MTD(secure) exceeds MTD(regular).
  ASSERT_TRUE(reg.mtd.present);
  ASSERT_TRUE(sec.mtd.present);
  EXPECT_GT(reg.mtd.mtd, 0);
  EXPECT_TRUE(mtd_exceeds(static_cast<int>(sec.mtd.mtd),
                          static_cast<int>(sec.mtd.max_traces),
                          static_cast<int>(reg.mtd.mtd)));

  // TVLA ran on both and produced finite statistics.
  ASSERT_TRUE(reg.tvla.present);
  ASSERT_TRUE(sec.tvla.present);
  EXPECT_EQ(reg.tvla.n_fixed + reg.tvla.n_random, 200);
  EXPECT_GT(reg.tvla.max_abs_t, 0.0);
  EXPECT_GT(sec.tvla.max_abs_t, 0.0);
}

TEST_F(DesLeakage, WarmCacheReplaysAndStatisticsAreThreadInvariant) {
  // The first test populated the trace cache; these re-assessments replay
  // every block from disk (zero misses) and re-run only the statistics.
  std::vector<LeakageReport> reports;
  for (int threads : {1, 2, 4, 8}) {
    reports.push_back(assess_secure(threads));
    EXPECT_EQ(reports.back().trace_cache_misses, 0)
        << "cold simulation at " << threads << " threads";
    EXPECT_GT(reports.back().trace_cache_hits, 0);
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    // Every statistic bit-identical at 1/2/4/8 threads (operator== on
    // the summaries compares raw doubles).
    EXPECT_EQ(reports[i].tvla, reports[0].tvla);
    EXPECT_EQ(reports[i].cpa, reports[0].cpa);
    EXPECT_EQ(reports[i].mtd, reports[0].mtd);
  }
}

TEST_F(DesLeakage, GuessingEntropyCurvesConvergeOnRegularFlow) {
  LeakageSetup s = setup(0);
  s.base_key = regular_->timings.key(FlowStage::kExtraction);
  s.with_tvla = false;
  s.with_mtd = false;
  s.ge_campaigns = 2;
  const LeakageReport r = assess_des_leakage(
      regular_->rtl, regular_->caps, /*differential=*/false, s);
  ASSERT_TRUE(r.ge.present);
  EXPECT_EQ(r.ge.n_campaigns, 2);
  ASSERT_FALSE(r.ge.trace_grid.empty());
  ASSERT_EQ(r.ge.guessing_entropy.size(), r.ge.trace_grid.size());
  ASSERT_EQ(r.ge.success_rate.size(), r.ge.trace_grid.size());
  // At the full budget the regular flow is broken in every sub-campaign:
  // guessing entropy collapses to rank 1 with certainty.
  EXPECT_EQ(r.ge.guessing_entropy.back(), 1.0);
  EXPECT_EQ(r.ge.success_rate.back(), 1.0);
  for (double sr : r.ge.success_rate) {
    EXPECT_GE(sr, 0.0);
    EXPECT_LE(sr, 1.0);
  }
}

TEST_F(DesLeakage, ReportRoundTripsAndAttachesToFlowReport) {
  const LeakageReport sec = assess_secure(0);

  // JSON round trip through validate + parse.
  const std::string json = leakage_report_json(sec);
  EXPECT_NO_THROW(validate_leakage_report(json_parse(json)));
  const LeakageReport parsed = parse_leakage_report(json);
  EXPECT_EQ(parsed, sec);

  // The digest folds into the flow report and the result still validates.
  FlowReport flow;
  flow.flow = "secure";
  flow.design = "des_dpa";
  StageEntry stage;  // the schema requires at least one stage
  stage.name = "synthesis";
  stage.ms = 1.0;
  stage.cache = "miss";
  stage.cache_key = "00000000deadbeef";
  flow.stages.push_back(stage);
  attach_leakage(flow, sec);
  EXPECT_TRUE(flow.leakage.present);
  EXPECT_EQ(flow.leakage.model, "hw");
  EXPECT_EQ(flow.leakage.cpa_correct_rank, sec.cpa.correct_rank);
  EXPECT_EQ(flow.leakage.mtd, sec.mtd.mtd);
  const FlowReport flow_parsed = parse_flow_report(flow_report_json(flow));
  EXPECT_EQ(flow_parsed.leakage.cpa_correct_rank, sec.cpa.correct_rank);
}

}  // namespace
}  // namespace secflow
