// Flow-level checkpoint tests: cache hit/miss accounting, warm-run speedup,
// selective invalidation (the content-address chain re-runs exactly the
// stages downstream of a changed input), checkpoint/resume, and bit-equality
// of cached and computed artifacts.
#include "flow/flow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <vector>

#include "base/error.h"
#include "ckpt/serialize.h"
#include "ckpt/store.h"
#include "liberty/builtin_lib.h"
#include "netlist/verilog_writer.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

namespace fs = std::filesystem;

/// Mid-size registered design: big enough that a cold secure flow spends
/// real time in routing (so the warm-run speedup assertion has margin),
/// small enough to keep the suite fast.
constexpr const char* kMidDesign = R"(
  module mid (input clk, input [7:0] a, input [7:0] b, output [7:0] y);
    reg [7:0] r1;
    reg [7:0] r2;
    wire [7:0] m;
    wire [7:0] s;
    assign m = (a & r2) ^ (b | r1);
    assign s = r1[0] ? (m ^ b) : (m & a);
    always @(posedge clk) begin
      r1 <= m ^ a;
      r2 <= s | b;
    end
    assign y = r2 ^ r1;
  endmodule)";

double wall_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void expect_outcomes(const StageTimings& t,
                     const std::array<CacheOutcome, kNumFlowStages>& want,
                     const char* ctx) {
  for (int i = 0; i < kNumFlowStages; ++i) {
    EXPECT_EQ(t.cache[i], want[i])
        << ctx << ": stage " << flow_stage_name(static_cast<FlowStage>(i));
  }
}

constexpr CacheOutcome H = CacheOutcome::kHit;
constexpr CacheOutcome M = CacheOutcome::kMiss;
constexpr CacheOutcome N = CacheOutcome::kNotRun;

/// Shared fixture: one cold cached secure run of the mid design per test
/// binary; warm-run tests reuse its cache directory read-only.
class FlowCkpt : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = builtin_stdcell018();
    circuit_ = new AigCircuit(parse_hdl(kMidDesign));
    cache_dir_ = fs::path(::testing::TempDir()) / "flow_ckpt_cache";
    fs::remove_all(cache_dir_);
    FlowOptions opts;
    opts.cache_dir = cache_dir_.string();
    const auto t0 = std::chrono::steady_clock::now();
    cold_ = new SecureFlowResult(run_secure_flow(*circuit_, lib_, opts));
    cold_ms_ = wall_ms(t0);
  }
  static void TearDownTestSuite() {
    delete cold_;
    delete circuit_;
    cold_ = nullptr;
    circuit_ = nullptr;
    lib_.reset();
    fs::remove_all(cache_dir_);
  }

  static FlowOptions cached_opts() {
    FlowOptions o;
    o.cache_dir = cache_dir_.string();
    return o;
  }

  static std::shared_ptr<const CellLibrary> lib_;
  static AigCircuit* circuit_;
  static fs::path cache_dir_;
  static SecureFlowResult* cold_;
  static double cold_ms_;
};

std::shared_ptr<const CellLibrary> FlowCkpt::lib_;
AigCircuit* FlowCkpt::circuit_ = nullptr;
fs::path FlowCkpt::cache_dir_;
SecureFlowResult* FlowCkpt::cold_ = nullptr;
double FlowCkpt::cold_ms_ = 0.0;

TEST_F(FlowCkpt, ColdRunMissesAndCheckpointsEveryStage) {
  expect_outcomes(cold_->timings, {M, M, M, M, M, M}, "cold");
  EXPECT_EQ(cold_->timings.cache_hits(), 0);
  EXPECT_EQ(cold_->timings.cache_misses(), kNumFlowStages);
  const ArtifactStore store(cache_dir_.string());
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kNumFlowStages));
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    EXPECT_NE(cold_->timings.key(s), 0u);
    EXPECT_TRUE(store.contains(flow_stage_name(s), cold_->timings.key(s)))
        << flow_stage_name(s);
  }
}

TEST_F(FlowCkpt, WarmRunHitsEveryStage) {
  const SecureFlowResult warm =
      run_secure_flow(*circuit_, lib_, cached_opts());

  expect_outcomes(warm.timings, {H, H, H, H, H, H}, "warm");
  EXPECT_EQ(warm.timings.cache_hits(), kNumFlowStages);
  // No wall-clock bar here: on a design this small a cold run now
  // finishes in tens of milliseconds (the windowed incremental router),
  // so deserializing six artifacts is not reliably faster than simply
  // recomputing them.  What the cache must guarantee is the hits above
  // and the bit-identical artifacts checked below.
  // Same keys as the run that wrote the entries.
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    EXPECT_EQ(warm.timings.key(s), cold_->timings.key(s));
  }
}

TEST_F(FlowCkpt, CachedArtifactsAreBitIdenticalToComputedOnes) {
  const SecureFlowResult warm =
      run_secure_flow(*circuit_, lib_, cached_opts());
  EXPECT_EQ(write_verilog(warm.rtl), write_verilog(cold_->rtl));
  EXPECT_EQ(write_verilog(warm.fat), write_verilog(cold_->fat));
  EXPECT_EQ(write_verilog(warm.diff), write_verilog(cold_->diff));
  EXPECT_EQ(write_def(warm.fat_def), write_def(cold_->fat_def));
  EXPECT_EQ(write_def(warm.def), write_def(cold_->def));
  EXPECT_EQ(write_extraction(warm.extraction),
            write_extraction(cold_->extraction));
  EXPECT_EQ(write_cap_table(warm.caps), write_cap_table(cold_->caps));
  EXPECT_EQ(write_timing_report(warm.timing),
            write_timing_report(cold_->timing));
  EXPECT_EQ(write_route_stats(warm.route_stats),
            write_route_stats(cold_->route_stats));
  EXPECT_EQ(write_lec_result(warm.lec), write_lec_result(cold_->lec));
  EXPECT_EQ(write_check_result(warm.stream_out_check),
            write_check_result(cold_->stream_out_check));
  EXPECT_EQ(write_substitution_stats(warm.sub_stats),
            write_substitution_stats(cold_->sub_stats));
  // On a substitution hit the live compound inventory is not rebuilt; the
  // fat netlist carries the deserialized fat library instead.
  EXPECT_EQ(warm.wlib, nullptr);
  EXPECT_EQ(warm.fat.library().size(), cold_->fat.library().size());
}

TEST_F(FlowCkpt, RoutingOptionChangeRerunsRoutingOnwardOnly) {
  // The issue's acceptance criterion: change a routing-stage option and
  // synthesis/substitution/placement still hit while routing and every
  // stage downstream of it re-run.
  FlowOptions opts = cached_opts();
  opts.route.via_cost += 2;
  const SecureFlowResult r = run_secure_flow(*circuit_, lib_, opts);
  expect_outcomes(r.timings, {H, H, H, M, M, M}, "route change");
  // Upstream keys unchanged, routing key (and the chain after it) re-keyed.
  EXPECT_EQ(r.timings.key(FlowStage::kPlacement),
            cold_->timings.key(FlowStage::kPlacement));
  EXPECT_NE(r.timings.key(FlowStage::kRouting),
            cold_->timings.key(FlowStage::kRouting));
  EXPECT_NE(r.timings.key(FlowStage::kExtraction),
            cold_->timings.key(FlowStage::kExtraction));
}

TEST_F(FlowCkpt, ExtractionOptionChangeRerunsOnlyExtraction) {
  FlowOptions opts = cached_opts();
  opts.extract.coupling_max_sep_um += 0.3;
  const SecureFlowResult r = run_secure_flow(*circuit_, lib_, opts);
  expect_outcomes(r.timings, {H, H, H, H, H, M}, "extract change");
}

TEST_F(FlowCkpt, SynthesisInputChangeInvalidatesTheWholeChain) {
  const AigCircuit other = parse_hdl(R"(
    module mid (input clk, input [7:0] a, input [7:0] b, output [7:0] y);
      reg [7:0] r1;
      always @(posedge clk) r1 <= a ^ b;
      assign y = r1;
    endmodule)");
  const SecureFlowResult r = run_secure_flow(other, lib_, cached_opts());
  expect_outcomes(r.timings, {M, M, M, M, M, M}, "new circuit");
  EXPECT_NE(r.timings.key(FlowStage::kSynthesis),
            cold_->timings.key(FlowStage::kSynthesis));
}

TEST_F(FlowCkpt, ThreadCountDoesNotAffectCacheKeys) {
  // The flow is bit-identical for any thread count, so parallelism is
  // excluded from the fingerprints: a differently-threaded run still hits.
  FlowOptions opts = cached_opts();
  opts.parallelism.n_threads = 2;
  const SecureFlowResult r = run_secure_flow(*circuit_, lib_, opts);
  expect_outcomes(r.timings, {H, H, H, H, H, H}, "2 threads");
}

TEST_F(FlowCkpt, StopAfterThenResumeReproducesTheFullRun) {
  const fs::path dir = fs::path(::testing::TempDir()) / "flow_resume_cache";
  fs::remove_all(dir);

  // First half: run through placement and stop.
  FlowOptions first;
  first.cache_dir = dir.string();
  first.stop_after = FlowStage::kPlacement;
  const SecureFlowResult head = run_secure_flow(*circuit_, lib_, first);
  expect_outcomes(head.timings, {M, M, M, N, N, N}, "stop_after");
  EXPECT_EQ(head.completed_through, FlowStage::kPlacement);
  EXPECT_EQ(ArtifactStore(dir.string()).size(), 3u);
  // Later-stage artifacts are placeholders.
  EXPECT_TRUE(head.def.nets.empty());
  EXPECT_EQ(head.timings.route_ms, 0.0);
  EXPECT_EQ(head.timings.key(FlowStage::kRouting), 0u);
  // The checkpointed prefix matches the full run's: same placement key,
  // and byte-identical placed.def (cold_->fat_def itself was later mutated
  // in place by routing, so compare against the placement checkpoint).
  EXPECT_EQ(head.timings.key(FlowStage::kPlacement),
            cold_->timings.key(FlowStage::kPlacement));
  const auto placed = ArtifactStore(cache_dir_.string())
                          .load("placement",
                                cold_->timings.key(FlowStage::kPlacement));
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(write_def(head.fat_def), placed->section("placed.def"));

  // Second half: resume from routing; the prefix must load, not recompute.
  FlowOptions second;
  second.cache_dir = dir.string();
  second.resume_from = FlowStage::kRouting;
  const SecureFlowResult tail = run_secure_flow(*circuit_, lib_, second);
  expect_outcomes(tail.timings, {H, H, H, M, M, M}, "resume_from");
  EXPECT_EQ(tail.completed_through, FlowStage::kExtraction);
  // The stitched run equals the one-shot cold run: layout and caps bit for
  // bit; timing up to net enumeration order (net_arrival_ps is NetId-
  // indexed, and a netlist reparsed from cache may number nets differently
  // than the one built in memory).
  EXPECT_EQ(write_def(tail.def), write_def(cold_->def));
  EXPECT_EQ(write_cap_table(tail.caps), write_cap_table(cold_->caps));
  EXPECT_EQ(tail.timing.critical_delay_ps, cold_->timing.critical_delay_ps);
  EXPECT_EQ(tail.timing.min_period_ps, cold_->timing.min_period_ps);
  EXPECT_EQ(tail.timing.endpoint, cold_->timing.endpoint);
  std::vector<double> ta = tail.timing.net_arrival_ps;
  std::vector<double> ca = cold_->timing.net_arrival_ps;
  std::sort(ta.begin(), ta.end());
  std::sort(ca.begin(), ca.end());
  EXPECT_EQ(ta, ca);

  fs::remove_all(dir);
}

TEST_F(FlowCkpt, ResumeAgainstAnEmptyCacheThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "flow_empty_cache";
  fs::remove_all(dir);
  FlowOptions opts;
  opts.cache_dir = dir.string();
  opts.resume_from = FlowStage::kRouting;
  EXPECT_THROW(run_secure_flow(*circuit_, lib_, opts), Error);
  fs::remove_all(dir);
}

TEST_F(FlowCkpt, RegularFlowCachesItsFourStages) {
  const fs::path dir = fs::path(::testing::TempDir()) / "flow_regular_cache";
  fs::remove_all(dir);
  FlowOptions opts;
  opts.cache_dir = dir.string();
  const RegularFlowResult cold = run_regular_flow(*circuit_, lib_, opts);
  expect_outcomes(cold.timings, {M, N, M, M, N, M}, "regular cold");
  const RegularFlowResult warm = run_regular_flow(*circuit_, lib_, opts);
  expect_outcomes(warm.timings, {H, N, H, H, N, H}, "regular warm");
  EXPECT_EQ(write_def(warm.def), write_def(cold.def));
  EXPECT_EQ(write_cap_table(warm.caps), write_cap_table(cold.caps));
  // Regular and secure runs of the same circuit never share cache entries.
  EXPECT_NE(warm.timings.key(FlowStage::kSynthesis),
            cold_->timings.key(FlowStage::kSynthesis));
  fs::remove_all(dir);
}

TEST_F(FlowCkpt, RegularFlowRejectsSecureOnlyStages) {
  FlowOptions opts = cached_opts();
  opts.stop_after = FlowStage::kSubstitution;
  EXPECT_THROW(run_regular_flow(*circuit_, lib_, opts), Error);
  opts.stop_after.reset();
  opts.resume_from = FlowStage::kDecomposition;
  EXPECT_THROW(run_regular_flow(*circuit_, lib_, opts), Error);
}

TEST_F(FlowCkpt, UncachedRunsReportDisabled) {
  const AigCircuit tiny = parse_hdl(
      "module t (input a, input b, output y); assign y = a & b; endmodule");
  const RegularFlowResult r = run_regular_flow(tiny, lib_);
  expect_outcomes(
      r.timings,
      {CacheOutcome::kDisabled, N, CacheOutcome::kDisabled,
       CacheOutcome::kDisabled, N, CacheOutcome::kDisabled},
      "no cache_dir");
  EXPECT_EQ(r.timings.cache_hits(), 0);
  EXPECT_EQ(r.timings.cache_misses(), 0);
}

}  // namespace
}  // namespace secflow
