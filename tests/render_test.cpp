#include "pnr/render.h"

#include <gtest/gtest.h>

#include "base/error.h"

namespace secflow {
namespace {

DefDesign tiny_design() {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {10000, 10000}};
  d.components.push_back(DefComponent{"u1", "INV", {1000, 1000}});
  DefNet n;
  n.name = "n";
  n.wires.push_back(Segment{{0, 5000}, {9000, 5000}, 0, 280});
  n.wires.push_back(Segment{{4000, 1000}, {4000, 9000}, 1, 280});
  n.vias.push_back(DefVia{{4000, 5000}, 0, 1});
  d.nets.push_back(n);
  return d;
}

TEST(Render, ContainsAllMarkKinds) {
  const std::string pic = render_design(tiny_design());
  EXPECT_NE(pic.find('#'), std::string::npos);  // component
  EXPECT_NE(pic.find('-'), std::string::npos);  // horizontal wire
  EXPECT_NE(pic.find('|'), std::string::npos);  // vertical wire
  EXPECT_NE(pic.find('+'), std::string::npos);  // via
}

TEST(Render, RespectsColumnBudget) {
  RenderOptions opts;
  opts.max_cols = 40;
  const std::string pic = render_design(tiny_design(), opts);
  std::size_t pos = 0;
  while (pos < pic.size()) {
    const std::size_t nl = pic.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_LE(nl - pos, 40u);
    pos = nl + 1;
  }
}

TEST(Render, LayerLabelsMode) {
  RenderOptions opts;
  opts.show_layers = true;
  const std::string pic = render_design(tiny_design(), opts);
  EXPECT_NE(pic.find('1'), std::string::npos);  // M1 segment
  EXPECT_NE(pic.find('2'), std::string::npos);  // M2 segment
}

TEST(Render, WireEndpointsLandAtExpectedCells) {
  RenderOptions opts;
  opts.max_cols = 101;  // 100 dbu per column on the 10000-wide die
  const std::string pic = render_design(tiny_design(), opts);
  // The horizontal wire runs at y=5000: find its row and check extent.
  std::vector<std::string> rows;
  std::size_t pos = 0;
  while (pos < pic.size()) {
    const std::size_t nl = pic.find('\n', pos);
    rows.push_back(pic.substr(pos, nl - pos));
    pos = nl + 1;
  }
  bool found = false;
  for (const std::string& row : rows) {
    if (row.find("----") != std::string::npos) {
      found = true;
      EXPECT_EQ(row.find('-'), 0u);       // starts at x=0
      EXPECT_GE(row.rfind('-'), 85u);     // reaches x=9000
    }
  }
  EXPECT_TRUE(found);
}

TEST(Render, TinyBudgetRejected) {
  RenderOptions opts;
  opts.max_cols = 4;
  EXPECT_THROW(render_design(tiny_design(), opts), Error);
}

}  // namespace
}  // namespace secflow
