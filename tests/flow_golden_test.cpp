// Golden-hash regression test for the flow's stage artifacts.
//
// Runs both flows on small fixed designs with checkpointing enabled,
// hashes every stage's checkpoint file, and compares against the hashes
// checked in at tests/golden/flow_small.golden.  Any behavioural drift in
// synthesis, substitution, placement, routing, decomposition or extraction
// shows up as a per-stage hash mismatch, keyed `<design>.<flow>.<stage>`.
//
// When a change is *intentional*, regenerate the golden file with:
//
//   SECFLOW_REGEN_GOLDEN=1 ./build/tests/flow_golden_test
//
// and commit the updated tests/golden/flow_small.golden.
#include "flow/flow.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "ckpt/hash.h"
#include "ckpt/store.h"
#include "liberty/builtin_lib.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

namespace fs = std::filesystem;

// SECFLOW_GOLDEN_FILE is the absolute source-tree path of the golden file,
// injected by tests/CMakeLists.txt so regeneration can write it in place.
#ifndef SECFLOW_GOLDEN_FILE
#error "tests/CMakeLists.txt must define SECFLOW_GOLDEN_FILE"
#endif

constexpr const char* kSmallDesign = R"(
  module small (input clk, input [3:0] a, input [3:0] b, output [3:0] y);
    reg [3:0] r;
    wire [3:0] m;
    assign m = (a & b) ^ r;
    always @(posedge clk) r <= m | a;
    assign y = r ^ b;
  endmodule)";

// The flow-fuzzer's grammar in miniature: synchronous reset, a scalar and
// a vector register, bit-granular assigns and a mux — the WDDL features
// (tie compounds, rail-swapped port buffers, gated master/slave flops)
// the plain `small` design does not reach.
constexpr const char* kSeqRstDesign = R"(
  module seqrst (input clk, input rst, input [1:0] d, input s,
                 output [1:0] q, output p);
    reg [1:0] r;
    reg f;
    wire [1:0] n;
    assign n[0] = (s ? d[0] : r[1]) ^ f;
    assign n[1] = ~(d[1] & r[0]);
    always @(posedge clk) begin
      r <= rst ? 2'd0 : n;
      f <= rst ? 1'd0 : (d[0] | f);
    end
    assign q = r;
    assign p = ~f;
  endmodule)";

/// Run one flow on one design and hash every executed stage's checkpoint,
/// keyed `<design>.<flow>.<stage>`.
std::map<std::string, std::string> run_and_hash(const std::string& design,
                                                const char* hdl,
                                                FlowKind kind) {
  const fs::path dir = fs::path(::testing::TempDir()) / "flow_golden_cache";
  fs::remove_all(dir);
  FlowOptions opts;
  opts.cache_dir = dir.string();
  const auto base = builtin_stdcell018();
  StageTimings timings;
  if (kind == FlowKind::kSecure) {
    timings = run_secure_flow(parse_hdl(hdl), base, opts).timings;
  } else {
    timings = run_regular_flow(parse_hdl(hdl), base, opts).timings;
  }

  const ArtifactStore store(dir.string());
  std::map<std::string, std::string> hashes;
  for (int i = 0; i < kNumFlowStages; ++i) {
    const FlowStage s = static_cast<FlowStage>(i);
    if (timings.outcome(s) == CacheOutcome::kNotRun) continue;
    const std::string path = store.path_for(flow_stage_name(s), timings.key(s));
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << "missing checkpoint " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    hashes[design + "." + flow_kind_name(kind) + "." + flow_stage_name(s)] =
        hash_hex(fnv1a(ss.str()));
  }
  fs::remove_all(dir);
  return hashes;
}

std::map<std::string, std::string> run_all() {
  std::map<std::string, std::string> hashes;
  hashes.merge(run_and_hash("small", kSmallDesign, FlowKind::kSecure));
  hashes.merge(run_and_hash("small", kSmallDesign, FlowKind::kRegular));
  hashes.merge(run_and_hash("seqrst", kSeqRstDesign, FlowKind::kSecure));
  return hashes;
}

std::map<std::string, std::string> read_golden(const std::string& path) {
  std::ifstream f(path);
  std::map<std::string, std::string> golden;
  std::string stage, hex;
  while (f >> stage >> hex) golden[stage] = hex;
  return golden;
}

TEST(FlowGolden, StageArtifactsMatchCheckedInHashes) {
  const std::map<std::string, std::string> hashes = run_all();

  if (std::getenv("SECFLOW_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(SECFLOW_GOLDEN_FILE, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << SECFLOW_GOLDEN_FILE;
    for (const auto& [stage, hex] : hashes) out << stage << ' ' << hex << '\n';
    GTEST_SKIP() << "regenerated " << SECFLOW_GOLDEN_FILE;
  }

  const std::map<std::string, std::string> golden =
      read_golden(SECFLOW_GOLDEN_FILE);
  ASSERT_FALSE(golden.empty())
      << "no golden data at " << SECFLOW_GOLDEN_FILE
      << " — regenerate with SECFLOW_REGEN_GOLDEN=1 ./flow_golden_test";

  // Per-point comparison so drift reads as "seqrst secure routing
  // changed", not just "something changed".
  for (const auto& [stage, hex] : hashes) {
    const auto it = golden.find(stage);
    ASSERT_NE(it, golden.end()) << "golden file lacks " << stage;
    EXPECT_EQ(hex, it->second)
        << "'" << stage << "' artifact drifted from golden.\n"
        << "If this change is intentional, regenerate with:\n"
        << "  SECFLOW_REGEN_GOLDEN=1 ./build/tests/flow_golden_test";
  }
  EXPECT_EQ(golden.size(), hashes.size());
}

TEST(FlowGolden, HashesAreReproducibleWithinABuild) {
  // The golden comparison is only meaningful if two runs of the same build
  // agree with each other.
  EXPECT_EQ(run_all(), run_all());
}

}  // namespace
}  // namespace secflow
