// Integration tests: the complete regular and secure flows end to end,
// including the paper's headline behaviours at reduced measurement counts
// (the full 2000-trace experiments live in bench/).
#include "flow/flow.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "crypto/des.h"
#include "netlist/netlist_ops.h"
#include "liberty/builtin_lib.h"
#include "sca/dpa_experiment.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

/// Shared fixture: run both flows on the paper's DES module once per test
/// binary (each run is tens of seconds).
class DesFlows : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = builtin_stdcell018();
    const AigCircuit circuit = make_des_dpa_circuit();
    FlowOptions opts;
    regular_ = new RegularFlowResult(run_regular_flow(circuit, lib_, opts));
    secure_ = new SecureFlowResult(run_secure_flow(circuit, lib_, opts));
  }
  static void TearDownTestSuite() {
    delete regular_;
    delete secure_;
    regular_ = nullptr;
    secure_ = nullptr;
    lib_.reset();
  }

  static std::shared_ptr<const CellLibrary> lib_;
  static RegularFlowResult* regular_;
  static SecureFlowResult* secure_;
};

std::shared_ptr<const CellLibrary> DesFlows::lib_;
RegularFlowResult* DesFlows::regular_ = nullptr;
SecureFlowResult* DesFlows::secure_ = nullptr;

TEST_F(DesFlows, ArtifactsAreConsistent) {
  regular_->rtl.validate();
  secure_->rtl.validate();
  secure_->fat.validate();
  secure_->diff.validate();
  EXPECT_EQ(secure_->fat_def.components.size(), secure_->fat.n_instances());
  EXPECT_EQ(secure_->def.components.size(), secure_->fat.n_instances());
}

TEST_F(DesFlows, SecureFlowPassesItsChecks) {
  EXPECT_TRUE(secure_->lec.equivalent);
  EXPECT_GT(secure_->lec.compared_points, 10);
  EXPECT_TRUE(secure_->stream_out_check.ok);
  EXPECT_GT(secure_->stream_out_check.nets_checked, 0);
}

TEST_F(DesFlows, AreaOverheadMatchesPaperShape) {
  // Paper Fig 5: 12880 um^2 vs 3782 um^2, ratio ~3.4x.
  const double ratio = secure_->die_area_um2() / regular_->die_area_um2();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(DesFlows, SecureSynthesisAvoidsInvertersInFat) {
  for (InstId id : secure_->fat.instance_ids()) {
    EXPECT_NE(secure_->fat.cell_of(id).function, LogicFn::inverter());
  }
}

TEST_F(DesFlows, FatRoutingIsCleanAndDecompositionSymmetric) {
  const std::int64_t fat_pitch = secure_->fat_lef.track_pitch_dbu();
  EXPECT_TRUE(check_shorts(secure_->fat_def, fat_pitch).ok);
  EXPECT_TRUE(
      check_connectivity(secure_->fat, secure_->fat_lef, secure_->fat_def,
                         4 * fat_pitch)
          .ok);
  const Process018 pr;
  EXPECT_TRUE(check_differential_symmetry(secure_->def,
                                          um_to_dbu(pr.wire_pitch_um))
                  .ok);
}

TEST_F(DesFlows, RailCapacitancesAreMatched) {
  const auto mismatch = rail_mismatch_ff(secure_->extraction);
  ASSERT_FALSE(mismatch.empty());
  double worst = 0.0, sum = 0.0;
  for (const auto& [net, mm] : mismatch) {
    worst = std::max(worst, mm);
    sum += mm;
  }
  // Wire geometry matches exactly (symmetry-checked); the residual is
  // pin-count asymmetry between the SOP halves plus crosstalk to other
  // nets' rails — the effects the paper's shielding/pitch options target.
  EXPECT_LT(worst, 20.0);
  EXPECT_LT(sum / static_cast<double>(mismatch.size()), 1.5);
}

TEST_F(DesFlows, EnergySignatureShapes) {
  DesDpaSetup setup;
  setup.n_measurements = 700;
  const auto ref =
      run_des_dpa_campaign(regular_->rtl, regular_->caps, setup, false);
  const auto sec =
      run_des_dpa_campaign(secure_->diff, secure_->caps, setup, true);
  const EnergyStats rs = compute_energy_stats(ref.cycle_energies_pj);
  const EnergyStats ss = compute_energy_stats(sec.cycle_energies_pj);
  // Paper section 3: secure mean energy is several times the reference
  // (27.1 vs 4.6 pJ) while its variation collapses (NED 6.6% vs 60%,
  // NSD 0.9% vs 12%).
  EXPECT_GT(ss.mean_pj, 2.0 * rs.mean_pj);
  EXPECT_LT(ss.ned, 0.15);
  EXPECT_GT(rs.ned, 0.5);
  EXPECT_LT(ss.nsd, 0.03);
  EXPECT_GT(rs.nsd, 0.1);
}

TEST_F(DesFlows, SecureObservablesAreFunctionallyCorrect) {
  // The WDDL circuit must still encrypt correctly: replay the campaign's
  // plaintext stream and check every observed ciphertext against the
  // reference model.
  PowerSimOptions popts;
  popts.precharge_inputs = true;
  PowerSimulator sim(secure_->diff, secure_->caps, popts);
  Rng rng(777);
  const std::uint32_t key = 46;
  for (int i = 0; i < 6; ++i) {
    sim.set_input("k_" + std::to_string(i) + "_t", (key >> i) & 1);
    sim.set_input("k_" + std::to_string(i) + "_f", !((key >> i) & 1));
  }
  // CL/CR are registers: the observable lags the driven plaintext by two
  // cycles (one for PL/PR, one for CL/CR).
  std::uint32_t hist_pl[2] = {0, 0}, hist_pr[2] = {0, 0};
  for (int cycle = 0; cycle < 24; ++cycle) {
    const std::uint32_t pl = static_cast<std::uint32_t>(rng.next_below(16));
    const std::uint32_t pr = static_cast<std::uint32_t>(rng.next_below(64));
    for (int b = 0; b < 4; ++b) {
      sim.set_input("pl_" + std::to_string(b) + "_t", (pl >> b) & 1);
      sim.set_input("pl_" + std::to_string(b) + "_f", !((pl >> b) & 1));
    }
    for (int b = 0; b < 6; ++b) {
      sim.set_input("pr_" + std::to_string(b) + "_t", (pr >> b) & 1);
      sim.set_input("pr_" + std::to_string(b) + "_f", !((pr >> b) & 1));
    }
    sim.run_cycle();
    if (cycle >= 4) {
      std::uint32_t cl = 0, cr = 0;
      for (int b = 0; b < 4; ++b) {
        cl |= sim.output_at_eval("cl_" + std::to_string(b) + "_t") << b;
        // Rails must be complementary during evaluation.
        EXPECT_NE(sim.output_at_eval("cl_" + std::to_string(b) + "_t"),
                  sim.output_at_eval("cl_" + std::to_string(b) + "_f"));
      }
      for (int b = 0; b < 6; ++b) {
        cr |= sim.output_at_eval("cr_" + std::to_string(b) + "_t") << b;
      }
      EXPECT_EQ(cl | (cr << 4),
                des_dpa_reference(hist_pl[0], hist_pr[0], key))
          << "cycle " << cycle;
    }
    hist_pl[0] = hist_pl[1];
    hist_pr[0] = hist_pr[1];
    hist_pl[1] = pl;
    hist_pr[1] = pr;
  }
}

TEST_F(DesFlows, ReferenceLeaksMoreThanSecure) {
  // Reduced-scale DPA shape check: the correct-key differential peak of
  // the reference design dominates its wrong-guess band; the secure
  // design's correct-key peak does not.
  DesDpaSetup setup;
  setup.n_measurements = 1600;
  const DpaAnalysis ref =
      run_des_dpa_regular(regular_->rtl, regular_->caps, setup);
  const DpaAnalysis sec =
      run_des_dpa_secure(secure_->diff, secure_->caps, setup);
  const DpaResult rr = ref.analyze(setup.key);
  const DpaResult sr = sec.analyze(setup.key);
  EXPECT_EQ(rr.best_guess, static_cast<int>(setup.key));
  EXPECT_TRUE(rr.disclosed);
  EXPECT_FALSE(sr.disclosed);

  // Normalized dominance: correct-key peak over the median guess peak.
  auto dominance = [&](const DpaResult& r) {
    std::vector<double> pp = r.peak_to_peak;
    std::nth_element(pp.begin(), pp.begin() + pp.size() / 2, pp.end());
    return r.peak_to_peak[setup.key] / pp[pp.size() / 2];
  };
  EXPECT_GT(dominance(rr), 1.5);
  EXPECT_LT(dominance(sr), 1.5);
}

TEST_F(DesFlows, FlowReportsMentionKeyFacts) {
  const std::string ref_report = flow_report(*regular_);
  const std::string sec_report = flow_report(*secure_);
  EXPECT_NE(ref_report.find("die"), std::string::npos);
  EXPECT_NE(sec_report.find("LEC"), std::string::npos);
  EXPECT_NE(sec_report.find("pass"), std::string::npos);
}

// --- smaller, fast flow checks ---------------------------------------------------

TEST(FlowSmall, CombinationalDesignRoundTrips) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = parse_hdl(R"(
    module tiny (input a, input b, output y);
      assign y = a ^ b;
    endmodule)");
  const RegularFlowResult ref = run_regular_flow(c, lib);
  const SecureFlowResult sec = run_secure_flow(c, lib);
  EXPECT_TRUE(sec.lec.equivalent);
  EXPECT_GT(sec.die_area_um2(), ref.die_area_um2());
  EXPECT_GT(sec.caps.size(), 0u);
}

TEST(FlowSmall, ShieldedPairsEmitShieldGeometry) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = parse_hdl(R"(
    module tiny (input a, input b, input s, output y);
      assign y = s ? (a & b) : (a ^ b);
    endmodule)");
  FlowOptions plain;
  FlowOptions shielded;
  shielded.shielded_pairs = true;
  const SecureFlowResult base = run_secure_flow(c, lib, plain);
  const SecureFlowResult sh = run_secure_flow(c, lib, shielded);
  // Shield net present, carrying one wire per fat segment.
  const DefNet* vss = sh.def.find_net("VSS");
  ASSERT_NE(vss, nullptr);
  EXPECT_FALSE(vss->wires.empty());
  EXPECT_EQ(base.def.find_net("VSS"), nullptr);
  // The paper's tradeoff: shielding costs silicon area.
  EXPECT_GT(sh.die_area_um2(), base.die_area_um2());
  // Shield wires never appear in the netlist, so they never switch; the
  // rails' coupling partners are now dominated by the static shield.
  double shield_coupling = 0.0, total_coupling = 0.0;
  for (const auto& [name, p] : sh.extraction.nets) {
    if (name == "VSS") continue;
    for (const auto& [other, cc] : p.couplings) {
      total_coupling += cc;
      if (other == "VSS") shield_coupling += cc;
    }
  }
  EXPECT_GT(shield_coupling, 0.25 * total_coupling);
}

TEST(FlowSmall, TimingsArePopulated) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = parse_hdl(R"(
    module tiny (input a, input b, output y);
      assign y = a & b;
    endmodule)");
  const SecureFlowResult sec = run_secure_flow(c, lib);
  EXPECT_GT(sec.timings.synthesis_ms, 0.0);
  EXPECT_GT(sec.timings.substitution_ms, 0.0);
  EXPECT_GT(sec.timings.route_ms, 0.0);
  EXPECT_GT(sec.timings.decomposition_ms, 0.0);
}

}  // namespace
}  // namespace secflow
