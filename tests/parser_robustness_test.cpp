// Robustness sweep: every text-format parser must reject mutilated input
// with a clean ParseError/Error — never crash, hang or accept garbage
// silently.  Each valid document is truncated at every prefix length and
// mutated at single positions.
#include <gtest/gtest.h>

#include "base/error.h"
#include "campaign/spec.h"
#include "leakage/report.h"
#include "lef/lef_io.h"
#include "liberty/builtin_lib.h"
#include "liberty/liberty_parser.h"
#include "netlist/verilog_parser.h"
#include "obs/report.h"
#include "pnr/def.h"
#include "sca/trace_io.h"
#include "synth/hdl.h"

namespace secflow {
namespace {

const char* kVerilog = R"(
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2 u1 (.A(a), .B(b), .Y(n1));
  INV u2 (.A(n1), .Y(y));
endmodule
)";

const char* kLiberty = R"(
library(mini) {
  cell(INV) {
    area : 6.0; width : 1.2; height : 5.0;
    pin(A) { direction : input; capacitance : 2.0; }
    pin(Y) { direction : output; function : "!A"; }
  }
}
)";

const char* kLef = R"(
VERSION 5.6 ;
LAYER M1
  DIRECTION HORIZONTAL ;
  PITCH 0.56 ;
  WIDTH 0.28 ;
END M1
MACRO INV
  SIZE 1.32 BY 5.04 ;
  PIN A DIRECTION INPUT ORIGIN 0.28 1.12 ;
  PIN Y DIRECTION OUTPUT ORIGIN 0.56 3.92 ;
END INV
END LIBRARY
)";

const char* kDef = R"(
DESIGN t ;
DIEAREA ( 0 0 ) ( 10000 8000 ) ;
ROWHEIGHT 5040 ;
TRACKPITCH 560 ;
COMPONENTS 1 ;
- u1 INV PLACED ( 560 0 ) ;
END COMPONENTS
NETS 1 ;
- n1
  ROUTED M1 280 ( 0 0 ) ( 1120 0 )
  VIA M1 M2 ( 1120 0 )
  ;
END NETS
END DESIGN
)";

const char* kCampaignSpec = R"({
  "schema": "secflow.campaign/1",
  "name": "sweep",
  "cache_dir": "ckpt",
  "threads": 2,
  "jobs": [
    {"name": "a", "circuit": {"builtin": "des-dpa"}, "flow": "secure",
     "seed": 7,
     "dpa": {"n_measurements": 400, "noise_ma": 0.5, "select_bit": 3,
             "sbox": 2, "key": 11},
     "options": {"route_mode": "quick", "shielded_pairs": false,
                 "place": {"seed": 5, "sa_batch": 8},
                 "route": {"via_cost": 4},
                 "extract": {"variation_sigma": 0.01}}},
    {"circuit": {"hdl": "module m(input a, output y); assign y = a; endmodule"},
     "flow": "regular",
     "options": {"stop_after": "placement"}}
  ]
})";

/// A valid secflow.flow-report/1 document, produced by the writer itself
/// so the sweep input can never drift from the schema.
std::string sample_flow_report_json() {
  FlowReport r;
  r.flow = "secure";
  r.design = "small";
  r.completed_through = "extraction";
  r.n_threads = 2;
  r.cells = 12;
  StageEntry e;
  e.name = "synthesis";
  e.ms = 1.25;
  e.cache = "miss";
  e.cache_key = "00000000deadbeef";
  r.stages.push_back(e);
  r.secure.present = true;
  r.secure.lec_equivalent = true;
  r.leakage.present = true;
  r.leakage.model = "hw";
  r.leakage.cpa_traces = 400;
  r.leakage.cpa_best_guess = 46;
  r.leakage.cpa_correct_rank = 1;
  r.leakage.cpa_disclosed = true;
  r.leakage.tvla_max_abs_t = 6.25;
  r.leakage.tvla_leaks = true;
  r.leakage.mtd = 200;
  r.leakage.mtd_max_traces = 600;
  r.metrics.counters["pnr.route.iterations"] = 2;
  return flow_report_json(r);
}

/// A valid secflow.leakage-report/1 document, produced by the writer
/// itself so the sweep input can never drift from the schema.
std::string sample_leakage_report_json() {
  LeakageReport r;
  r.flow = "secure";
  r.design = "des_dpa";
  r.seed = 2025;
  r.n_threads = 4;
  r.noise_ma = 0.6;
  r.tvla.present = true;
  r.tvla.n_fixed = 100;
  r.tvla.n_random = 100;
  r.tvla.n_samples = 800;
  r.tvla.max_abs_t = 18.3;
  r.tvla.leaky_samples = 12;
  r.tvla.leaks = true;
  r.cpa.present = true;
  r.cpa.model = "hw";
  r.cpa.n_traces = 400;
  r.cpa.best_guess = 2;
  r.cpa.best_score = 0.13;
  r.cpa.runner_up_score = 0.11;
  r.cpa.correct_key = 46;
  r.cpa.correct_rank = 36;
  r.ge.present = true;
  r.ge.n_campaigns = 2;
  r.ge.trace_grid = {100, 200, 400};
  r.ge.guessing_entropy = {12.0, 3.5, 1.0};
  r.ge.success_rate = {0.0, 0.5, 1.0};
  r.mtd.present = true;
  r.mtd.mtd = -1;
  r.mtd.max_traces = 600;
  r.mtd.step = 200;
  r.mtd.persist = 3;
  r.mtd.traces_fed = 600;
  r.mtd.checkpoints = {200, 400, 600};
  r.mtd.ranks = {40, 38, 36};
  r.trace_cache_hits = 3;
  r.trace_cache_misses = 7;
  return leakage_report_json(r);
}

const char* kTracesCsv =
    "0.25,1.5,-0.75,2.0\n"
    "1.0,0.5,0.0,-1.25\n"
    "-2.0,3.5,1.75,0.5\n";

const char* kHdl = R"(
module m (input clk, input [3:0] a, output [3:0] y);
  reg [3:0] r;
  always @(posedge clk) r <= a ^ r;
  assign y = r;
endmodule
)";

/// Parse every strict prefix; each must throw (or, for a few formats,
/// succeed when the suffix is ignorable) — never crash.
template <typename Fn>
void sweep_truncations(const std::string& doc, Fn parse) {
  for (std::size_t len = 0; len < doc.size(); len += 3) {
    try {
      parse(doc.substr(0, len));
    } catch (const Error&) {
      // expected for most prefixes
    }
  }
}

/// Mutate single characters; parser must throw or parse, never crash.
template <typename Fn>
void sweep_mutations(const std::string& doc, Fn parse) {
  const char kJunk[] = {'}', '(', ';', 'Z', '0', '\\'};
  for (std::size_t pos = 0; pos < doc.size(); pos += 7) {
    for (char j : kJunk) {
      std::string mutated = doc;
      mutated[pos] = j;
      try {
        parse(mutated);
      } catch (const Error&) {
      }
    }
  }
}

TEST(ParserRobustness, Verilog) {
  const auto lib = builtin_stdcell018();
  auto parse = [&](const std::string& s) { parse_verilog(s, lib); };
  sweep_truncations(kVerilog, parse);
  sweep_mutations(kVerilog, parse);
}

TEST(ParserRobustness, Liberty) {
  auto parse = [](const std::string& s) { parse_liberty(s); };
  sweep_truncations(kLiberty, parse);
  sweep_mutations(kLiberty, parse);
}

TEST(ParserRobustness, Lef) {
  auto parse = [](const std::string& s) { parse_lef(s); };
  sweep_truncations(kLef, parse);
  sweep_mutations(kLef, parse);
}

TEST(ParserRobustness, Def) {
  auto parse = [](const std::string& s) { parse_def(s); };
  sweep_truncations(kDef, parse);
  sweep_mutations(kDef, parse);
}

TEST(ParserRobustness, Hdl) {
  auto parse = [](const std::string& s) { parse_hdl(s); };
  sweep_truncations(kHdl, parse);
  sweep_mutations(kHdl, parse);
}

TEST(ParserRobustness, CampaignSpec) {
  auto parse = [](const std::string& s) { parse_campaign_spec(s); };
  sweep_truncations(kCampaignSpec, parse);
  sweep_mutations(kCampaignSpec, parse);
}

TEST(ParserRobustness, FlowReport) {
  const std::string doc = sample_flow_report_json();
  auto parse = [](const std::string& s) { parse_flow_report(s); };
  sweep_truncations(doc, parse);
  sweep_mutations(doc, parse);
}

TEST(ParserRobustness, LeakageReport) {
  const std::string doc = sample_leakage_report_json();
  auto parse = [](const std::string& s) { parse_leakage_report(s); };
  sweep_truncations(doc, parse);
  sweep_mutations(doc, parse);
}

TEST(ParserRobustness, LeakageReportRoundTrip) {
  const std::string doc = sample_leakage_report_json();
  const LeakageReport parsed = parse_leakage_report(doc);
  EXPECT_EQ(leakage_report_json(parsed), doc);
}

TEST(ParserRobustness, TracesCsv) {
  auto parse = [](const std::string& s) { parse_traces_csv(s); };
  sweep_truncations(kTracesCsv, parse);
  sweep_mutations(kTracesCsv, parse);
}

TEST(ParserRobustness, TracesCsvRejectsNonFinite) {
  // NaN/Inf would silently poison the one-pass accumulators; the loader
  // must stop them at the boundary with a clean Error.
  EXPECT_THROW(parse_traces_csv("1.0,nan,2.0\n"), Error);
  EXPECT_THROW(parse_traces_csv("1.0,inf,2.0\n"), Error);
  EXPECT_THROW(parse_traces_csv("1.0,-inf,2.0\n"), Error);
  EXPECT_THROW(parse_traces_csv("nan\n"), Error);
}

TEST(ParserRobustness, TracesCsvRejectsTruncatedRecords) {
  // Short row (truncated record), trailing comma (empty cell), and
  // non-numeric junk must all throw, never produce a ragged matrix.
  EXPECT_THROW(parse_traces_csv("1.0,2.0,3.0\n1.0,2.0\n"), Error);
  EXPECT_THROW(parse_traces_csv("1.0,2.0,\n"), Error);
  EXPECT_THROW(parse_traces_csv("1.0,2.0,x\n"), Error);
  EXPECT_THROW(parse_traces_csv("1.0,2.0,3.0junk\n"), Error);
}

TEST(ParserRobustness, TracesCsvAcceptsValidInput) {
  const auto traces = parse_traces_csv(kTracesCsv);
  ASSERT_EQ(traces.size(), 3u);
  ASSERT_EQ(traces[0].size(), 4u);
  EXPECT_DOUBLE_EQ(traces[0][0], 0.25);
  EXPECT_DOUBLE_EQ(traces[2][3], 0.5);
  EXPECT_TRUE(parse_traces_csv("").empty());
}

TEST(ParserRobustness, ValidDocumentsStillParse) {
  const auto lib = builtin_stdcell018();
  EXPECT_NO_THROW(parse_verilog(kVerilog, lib));
  EXPECT_NO_THROW(parse_liberty(kLiberty));
  EXPECT_NO_THROW(parse_lef(kLef));
  EXPECT_NO_THROW(parse_def(kDef));
  EXPECT_NO_THROW(parse_hdl(kHdl));
  EXPECT_NO_THROW(parse_campaign_spec(kCampaignSpec));
  EXPECT_NO_THROW(parse_flow_report(sample_flow_report_json()));
  EXPECT_NO_THROW(parse_leakage_report(sample_leakage_report_json()));
  EXPECT_NO_THROW(parse_traces_csv(kTracesCsv));
}

}  // namespace
}  // namespace secflow
