#include <gtest/gtest.h>

#include "base/error.h"
#include "liberty/bool_expr.h"
#include "liberty/builtin_lib.h"
#include "liberty/liberty_parser.h"

namespace secflow {
namespace {

// --- bool expression parser ----------------------------------------------

TEST(BoolExpr, BasicOperators) {
  const std::vector<std::string> ab = {"A", "B"};
  EXPECT_EQ(parse_bool_expr("A&B", ab), LogicFn::and_n(2));
  EXPECT_EQ(parse_bool_expr("A|B", ab), LogicFn::or_n(2));
  EXPECT_EQ(parse_bool_expr("A^B", ab), LogicFn::xor_n(2));
  EXPECT_EQ(parse_bool_expr("!(A&B)", ab), LogicFn::nand_n(2));
  EXPECT_EQ(parse_bool_expr("!(A|B)", ab), LogicFn::nor_n(2));
  EXPECT_EQ(parse_bool_expr("!(A^B)", ab), LogicFn::xnor_n(2));
}

TEST(BoolExpr, LibertyStyleSynonyms) {
  const std::vector<std::string> ab = {"A", "B"};
  EXPECT_EQ(parse_bool_expr("A*B", ab), LogicFn::and_n(2));
  EXPECT_EQ(parse_bool_expr("A+B", ab), LogicFn::or_n(2));
  EXPECT_EQ(parse_bool_expr("A'", ab).eval(0b01), false);
  EXPECT_EQ(parse_bool_expr("A B", ab), LogicFn::and_n(2));  // juxtaposition
}

TEST(BoolExpr, Precedence) {
  const std::vector<std::string> abc = {"A", "B", "C"};
  // ! binds tighter than &, & tighter than ^, ^ tighter than |.
  const LogicFn f = parse_bool_expr("!A&B|C", abc);
  for (unsigned i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, c = i & 4;
    EXPECT_EQ(f.eval(i), (!a && b) || c) << i;
  }
  const LogicFn g = parse_bool_expr("A^B&C", abc);
  for (unsigned i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, c = i & 4;
    EXPECT_EQ(g.eval(i), a != (b && c)) << i;
  }
}

TEST(BoolExpr, Constants) {
  EXPECT_EQ(parse_bool_expr("0", {}), LogicFn::constant(false));
  EXPECT_EQ(parse_bool_expr("1", {}), LogicFn::constant(true));
}

TEST(BoolExpr, Aoi32Function) {
  const std::vector<std::string> in = {"A0", "A1", "A2", "B0", "B1"};
  const LogicFn f = parse_bool_expr("!((A0&A1&A2)|(B0&B1))", in);
  for (unsigned i = 0; i < 32; ++i) {
    const bool a0 = i & 1, a1 = i & 2, a2 = i & 4, b0 = i & 8, b1 = i & 16;
    EXPECT_EQ(f.eval(i), !((a0 && a1 && a2) || (b0 && b1))) << i;
  }
}

TEST(BoolExpr, Errors) {
  EXPECT_THROW(parse_bool_expr("A&", {"A"}), ParseError);
  EXPECT_THROW(parse_bool_expr("A&Z", {"A"}), ParseError);
  EXPECT_THROW(parse_bool_expr("(A", {"A"}), ParseError);
  EXPECT_THROW(parse_bool_expr("A)", {"A"}), ParseError);
}

// --- liberty parser -------------------------------------------------------

TEST(Liberty, ParsesMinimalLibrary) {
  const std::string src = R"(
    library(mini) {
      cell(INV) {
        area : 6.0; width : 1.2; height : 5.0;
        pin(A) { direction : input; capacitance : 2.0; }
        pin(Y) { direction : output; function : "!A"; }
      }
    }
  )";
  const auto lib = parse_liberty(src);
  EXPECT_EQ(lib->name(), "mini");
  EXPECT_EQ(lib->size(), 1u);
  const CellType& inv = lib->cell("INV");
  EXPECT_EQ(inv.function, LogicFn::inverter());
  EXPECT_DOUBLE_EQ(inv.area_um2, 6.0);
  EXPECT_DOUBLE_EQ(inv.pins[0].cap_ff, 2.0);
}

TEST(Liberty, RejectsMissingFunction) {
  const std::string src = R"(
    library(bad) {
      cell(X) {
        area : 1; width : 1; height : 1;
        pin(A) { direction : input; capacitance : 1; }
        pin(Y) { direction : output; }
      }
    }
  )";
  EXPECT_THROW(parse_liberty(src), ParseError);
}

TEST(Liberty, RejectsTwoOutputs) {
  const std::string src = R"(
    library(bad) {
      cell(X) {
        area : 1; width : 1; height : 1;
        pin(Y) { direction : output; function : "1"; }
        pin(Z) { direction : output; function : "0"; }
      }
    }
  )";
  EXPECT_THROW(parse_liberty(src), Error);
}

// --- built-in library -----------------------------------------------------

TEST(BuiltinLib, ValidatesAndHasExpectedCells) {
  const auto lib = builtin_stdcell018();
  lib->validate();
  for (const char* name :
       {"INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3", "AND2", "AND3", "OR2",
        "OR3", "XOR2", "XNOR2", "AOI21", "AOI22", "AOI32", "OAI21", "OAI22",
        "MUX2", "DFF", "TIE0", "TIE1"}) {
    EXPECT_TRUE(lib->contains(name)) << name;
  }
}

TEST(BuiltinLib, FunctionsAreCorrect) {
  const auto lib = builtin_stdcell018();
  EXPECT_EQ(lib->cell("INV").function, LogicFn::inverter());
  EXPECT_EQ(lib->cell("BUF").function, LogicFn::identity());
  EXPECT_EQ(lib->cell("NAND2").function, LogicFn::nand_n(2));
  EXPECT_EQ(lib->cell("NOR3").function, LogicFn::nor_n(3));
  EXPECT_EQ(lib->cell("AND2").function, LogicFn::and_n(2));
  EXPECT_EQ(lib->cell("OR3").function, LogicFn::or_n(3));
  EXPECT_EQ(lib->cell("XOR2").function, LogicFn::xor_n(2));
  EXPECT_EQ(lib->cell("MUX2").function, LogicFn::mux2());
  // Paper Fig 2 example cell.
  const CellType& aoi32 = lib->cell("AOI32");
  EXPECT_EQ(aoi32.n_inputs(), 5);
  for (unsigned i = 0; i < 32; ++i) {
    const bool a0 = i & 1, a1 = i & 2, a2 = i & 4, b0 = i & 8, b1 = i & 16;
    EXPECT_EQ(aoi32.function.eval(i), !((a0 && a1 && a2) || (b0 && b1)));
  }
}

TEST(BuiltinLib, FlopAndTies) {
  const auto lib = builtin_stdcell018();
  const CellType& dff = lib->cell("DFF");
  EXPECT_EQ(dff.kind, CellKind::kFlop);
  EXPECT_GE(dff.d_pin(), 0);
  EXPECT_GE(dff.ck_pin(), 0);
  EXPECT_EQ(lib->cell("TIE0").kind, CellKind::kTie);
  EXPECT_FALSE(lib->cell("TIE0").function.eval(0));
  EXPECT_TRUE(lib->cell("TIE1").function.eval(0));
}

TEST(BuiltinLib, GeometryConsistent) {
  const auto lib = builtin_stdcell018();
  for (CellTypeId id : lib->all()) {
    const CellType& c = lib->cell(id);
    EXPECT_NEAR(c.area_um2, c.width_um * c.height_um, 1e-6) << c.name;
    EXPECT_DOUBLE_EQ(c.height_um, kRowHeightUm) << c.name;
  }
}

TEST(BuiltinLib, WriterRoundTrips) {
  const auto lib = builtin_stdcell018();
  const std::string text = write_liberty(*lib);
  const auto back = parse_liberty(text);
  EXPECT_EQ(back->size(), lib->size());
  for (CellTypeId id : lib->all()) {
    const CellType& a = lib->cell(id);
    const CellType& b = back->cell(a.name);
    EXPECT_EQ(a.function, b.function) << a.name;
    EXPECT_EQ(a.kind, b.kind) << a.name;
    EXPECT_NEAR(a.area_um2, b.area_um2, 1e-9) << a.name;
    EXPECT_EQ(a.pins.size(), b.pins.size()) << a.name;
  }
}

}  // namespace
}  // namespace secflow
