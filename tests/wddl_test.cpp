#include <gtest/gtest.h>

#include "base/error.h"
#include "base/rng.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

class WddlTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> base_ = builtin_stdcell018();
  WddlLibrary wlib_{base_};

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), base_);
  }
};

// --- compound generation ---------------------------------------------------

TEST_F(WddlTest, Nand2CompoundIsOr2PlusAnd2) {
  const WddlCompound& c = wlib_.compound_for_cell(base_->cell("NAND2"), 0);
  EXPECT_EQ(c.name, "WDDL_NAND2");
  // True half: !a + !b = OR2 of false rails; false half: ab = AND2.
  EXPECT_EQ(c.primitives.at("OR2"), 1);
  EXPECT_EQ(c.primitives.at("AND2"), 1);
  EXPECT_NEAR(c.area_um2,
              base_->cell("OR2").area_um2 + base_->cell("AND2").area_um2,
              1e-9);
}

TEST_F(WddlTest, And2CompoundMirrorsNand2Cost) {
  const WddlCompound& c = wlib_.compound_for_cell(base_->cell("AND2"), 0);
  EXPECT_EQ(c.primitives.at("AND2"), 1);
  EXPECT_EQ(c.primitives.at("OR2"), 1);
}

TEST_F(WddlTest, Aoi32CompoundMatchesFig2Structure) {
  // Fig 2: each half is an AND-AND-OR network over 5 rails.
  const WddlCompound& c = wlib_.compound_for_cell(base_->cell("AOI32"), 0);
  // False half = A0A1A2 + B0B1: one AND3, one AND2, one OR2.
  // True half = SOP of the AOI function itself.
  EXPECT_GE(c.primitives.at("AND3"), 1);
  EXPECT_GE(c.primitives.at("AND2"), 1);
  EXPECT_GE(c.primitives.at("OR2"), 1);
  EXPECT_GT(c.area_um2, base_->cell("AOI32").area_um2);
}

TEST_F(WddlTest, PhaseMaskChangesFunction) {
  const WddlCompound& plain = wlib_.compound_for_cell(base_->cell("AND2"), 0);
  const WddlCompound& n1 = wlib_.compound_for_cell(base_->cell("AND2"), 1);
  EXPECT_NE(plain.function, n1.function);
  // AND2 with input 0 inverted computes !a & b.
  EXPECT_TRUE(n1.function.eval(0b10));
  EXPECT_FALSE(n1.function.eval(0b11));
  EXPECT_EQ(n1.name, "WDDL_AND2_N1");
}

TEST_F(WddlTest, CompoundsDedupeByFunction) {
  // XOR2 with one swapped input == XNOR2: one compound, two requests.
  const WddlCompound& a = wlib_.compound_for_cell(base_->cell("XOR2"), 1);
  const WddlCompound& b = wlib_.compound_for_cell(base_->cell("XNOR2"), 0);
  EXPECT_EQ(&a, &b);
}

TEST_F(WddlTest, BothHalvesArePositiveUnate) {
  // Core WDDL invariant: compounds are positive monotone in the rails, so
  // the all-zero precharge wave propagates.  Verified structurally: cubes
  // only reference rails positively (by construction) — and functionally
  // via the SOP over rails.
  wlib_.generate_full_inventory();
  for (const WddlCompound* c : wlib_.all()) {
    if (c->kind != WddlKind::kComb) continue;
    // All-rails-zero evaluates both halves to 0: with every rail at 0,
    // every cube's AND is 0 (cubes are non-empty).
    for (const Cube& cube : c->true_sop) EXPECT_GT(cube.n_literals(), 0);
    for (const Cube& cube : c->false_sop) EXPECT_GT(cube.n_literals(), 0);
    // Halves are complementary on valid differential inputs.
    const int n = c->function.n_inputs();
    for (unsigned r = 0; r < (1u << n); ++r) {
      EXPECT_EQ(eval_sop(c->true_sop, r), c->function.eval(r));
      EXPECT_EQ(eval_sop(c->false_sop, r), !c->function.eval(r));
    }
  }
}

TEST_F(WddlTest, FullInventoryIsPaperScale) {
  const int n = wlib_.generate_full_inventory();
  // The paper's library has 128 compounds; ours enumerates all phase
  // variants of the base set, deduplicated by function — same order of
  // magnitude, and strictly more than the base cell count.
  EXPECT_GT(n, 80);
  EXPECT_LT(n, 400);
  EXPECT_EQ(static_cast<std::size_t>(n), wlib_.fat_library()->size());
}

TEST_F(WddlTest, FatCellsAreConsistent) {
  wlib_.generate_full_inventory();
  const auto fat = wlib_.fat_library();
  fat->validate();
  for (const WddlCompound* c : wlib_.all()) {
    const CellType& cell = fat->cell(c->fat_cell);
    EXPECT_EQ(cell.name, c->name);
    EXPECT_NEAR(cell.area_um2, c->area_um2, 1e-9);
    EXPECT_EQ(&wlib_.compound_of(c->fat_cell), c);
  }
}

TEST_F(WddlTest, FlopCompoundPrimitives) {
  const WddlCompound& c = wlib_.flop_compound(false);
  EXPECT_EQ(c.primitives.at("DFFN"), 2);
  EXPECT_EQ(c.primitives.at("DFF"), 2);
  EXPECT_EQ(c.primitives.at("AND2"), 2);
  const WddlCompound& n = wlib_.flop_compound(true);
  EXPECT_EQ(n.function, LogicFn::inverter());
  EXPECT_NE(&c, &n);
}

// --- cell substitution -------------------------------------------------------

TEST_F(WddlTest, SubstitutionRemovesInverters) {
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = ~(a & ~b);
    endmodule
  )");
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  EXPECT_GE(res.stats.inverters_removed + res.stats.buffers_removed, 1);
  for (InstId id : res.fat.instance_ids()) {
    const CellType& c = res.fat.cell_of(id);
    EXPECT_NE(c.function, LogicFn::inverter()) << c.name;
  }
  res.fat.validate();
}

TEST_F(WddlTest, FatNetlistIsLogicallyEquivalent) {
  const std::string src = R"(
    module m (input a, input b, input c, output y, output z);
      wire t;
      assign t = ~(a ^ b);
      assign y = t | ~c;
      assign z = ~(t & c);
    endmodule
  )";
  const Netlist rtl = map_hdl(src);
  SubstitutionResult res = substitute_cells(rtl, wlib_);

  FunctionalSim ref(rtl), fat(res.fat);
  for (unsigned i = 0; i < 8; ++i) {
    for (auto* s : {&ref, &fat}) {
      s->set_input("a", i & 1);
      s->set_input("b", i & 2);
      s->set_input("c", i & 4);
      s->propagate();
    }
    EXPECT_EQ(fat.output("y"), ref.output("y")) << i;
    EXPECT_EQ(fat.output("z"), ref.output("z")) << i;
  }
}

TEST_F(WddlTest, SequentialSubstitution) {
  const Netlist rtl = map_hdl(R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule
  )");
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  EXPECT_EQ(res.stats.flops_substituted, 1);
  EXPECT_EQ(res.fat.count_kind(CellKind::kFlop), 1);
  EXPECT_TRUE(res.fat.find_port("clk").valid());
}

TEST_F(WddlTest, RejectsClockAsData) {
  Netlist rtl("bad", base_);
  const NetId ck = rtl.add_net("ck");
  const NetId d = rtl.add_net("d");
  const NetId q = rtl.add_net("q");
  const NetId y = rtl.add_net("y");
  rtl.add_port("ck", PinDir::kInput, ck);
  rtl.add_port("d", PinDir::kInput, d);
  rtl.add_port("y", PinDir::kOutput, y);
  add_flop(rtl, "DFF", "r", d, ck, q);
  add_gate(rtl, "AND2", "g", {q, ck}, y);
  EXPECT_THROW(substitute_cells(rtl, wlib_), Error);
}

// --- differential expansion ---------------------------------------------------

class WddlDiffTest : public WddlTest {
 protected:
  /// Drive the differential sim through one full WDDL clock cycle that
  /// evaluates with the given single-ended input values.  Entry invariant:
  /// the previous evaluate phase (or the initial state) is settled.
  /// Returns with the new evaluate phase settled (clock high).
  static void wddl_cycle(FunctionalSim& sim,
                         const std::vector<std::pair<std::string, bool>>& ins) {
    // Falling edge: masters capture the (still valid) evaluate rails.
    sim.step_edge(false);
    // Precharge phase: clock low, all inputs (0,0) — the wave of zeros.
    sim.set_input("clk", false);
    for (const auto& [name, v] : ins) {
      (void)v;
      sim.set_input(name + "_t", false);
      sim.set_input(name + "_f", false);
    }
    sim.propagate();
    // Rising edge: slaves take over the captured state.
    sim.step_edge(true);
    // Evaluate phase: clock high, inputs differential.
    sim.set_input("clk", true);
    for (const auto& [name, v] : ins) {
      sim.set_input(name + "_t", v);
      sim.set_input(name + "_f", !v);
    }
    sim.propagate();
  }

  /// WDDL registers power up in the invalid (0,0) rail state; initialize
  /// every false-rail master/slave to 1 so all registers hold a valid
  /// differential 0 (matching a reset, which the paper's test circuit
  /// does not need because its registers have no feedback), then settle an
  /// initial evaluate phase — wddl_cycle's entry invariant.
  static void init_wddl_state(
      FunctionalSim& sim, const Netlist& diff,
      const std::vector<std::pair<std::string, bool>>& ins) {
    for (InstId id : diff.instance_ids()) {
      if (diff.cell_of(id).kind != CellKind::kFlop) continue;
      const std::string& name = diff.instance(id).name;
      if (name.ends_with("_f_mst") || name.ends_with("_f_slv")) {
        sim.set_flop_state(id, true);
      }
    }
    sim.set_input("clk", true);
    for (const auto& [name, v] : ins) {
      sim.set_input(name + "_t", v);
      sim.set_input(name + "_f", !v);
    }
    sim.propagate();
  }
};

TEST_F(WddlDiffTest, CombinationalRailsAreComplementary) {
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, input c, output y);
      assign y = ~((a & b) | (b ^ c));
    endmodule
  )");
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  const Netlist diff = expand_differential(res.fat, wlib_);
  diff.validate();

  FunctionalSim ref(rtl);
  FunctionalSim sim(diff);
  for (unsigned i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, c = i & 4;
    ref.set_input("a", a);
    ref.set_input("b", b);
    ref.set_input("c", c);
    ref.propagate();
    for (const auto& [n, v] : std::vector<std::pair<std::string, bool>>{
             {"a", a}, {"b", b}, {"c", c}}) {
      sim.set_input(n + "_t", v);
      sim.set_input(n + "_f", !v);
    }
    sim.propagate();
    EXPECT_EQ(sim.output("y_t"), ref.output("y")) << i;
    EXPECT_EQ(sim.output("y_f"), !ref.output("y")) << i;
  }
}

TEST_F(WddlDiffTest, PrechargeWavePropagates) {
  // All-zero inputs must drive every rail net to 0 (flop states 0).
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, input c, input d, output y);
      assign y = ~((a ^ b) & (c | ~d));
    endmodule
  )");
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  const Netlist diff = expand_differential(res.fat, wlib_);

  FunctionalSim sim(diff);
  for (const char* n : {"a", "b", "c", "d"}) {
    sim.set_input(std::string(n) + "_t", false);
    sim.set_input(std::string(n) + "_f", false);
  }
  sim.propagate();
  for (NetId id : diff.net_ids()) {
    EXPECT_FALSE(sim.net_value(id)) << diff.net(id).name;
  }
}

TEST_F(WddlDiffTest, ExactlyOneRailSwitchesPerEvaluation) {
  // The 100%-switching-factor property: from the precharged state, the
  // evaluation phase switches exactly one rail of every differential pair.
  const Netlist rtl = map_hdl(R"(
    module m (input a, input b, input c, output y);
      assign y = (a & b) ^ c;
    endmodule
  )");
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  const Netlist diff = expand_differential(res.fat, wlib_);
  FunctionalSim sim(diff);

  Rng rng(17);
  for (int trial = 0; trial < 16; ++trial) {
    // Precharge.
    for (const char* n : {"a", "b", "c"}) {
      sim.set_input(std::string(n) + "_t", false);
      sim.set_input(std::string(n) + "_f", false);
    }
    sim.propagate();
    std::vector<bool> pre(diff.n_nets());
    for (NetId id : diff.net_ids()) pre[id.index()] = sim.net_value(id);
    // Evaluate with random inputs.
    for (const char* n : {"a", "b", "c"}) {
      const bool v = rng.next_bool();
      sim.set_input(std::string(n) + "_t", v);
      sim.set_input(std::string(n) + "_f", !v);
    }
    sim.propagate();
    // Each rail pair: exactly one of (t, f) rose from 0.
    for (NetId id : diff.net_ids()) {
      const std::string& name = diff.net(id).name;
      if (name.size() < 2 || name.substr(name.size() - 2) != "_t") continue;
      const NetId f = diff.find_net(name.substr(0, name.size() - 2) + "_f");
      if (!f.valid()) continue;
      EXPECT_FALSE(pre[id.index()]);
      EXPECT_FALSE(pre[f.index()]);
      EXPECT_NE(sim.net_value(id), sim.net_value(f)) << name;
    }
  }
}

TEST_F(WddlDiffTest, SequentialDifferentialMatchesReference) {
  const std::string src = R"(
    module m (input clk, input [1:0] d, output [1:0] q);
      reg [1:0] r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule
  )";
  const Netlist rtl = map_hdl(src);
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  const Netlist diff = expand_differential(res.fat, wlib_);
  diff.validate();

  FunctionalSim ref(rtl);
  ref.propagate();
  FunctionalSim sim(diff);
  init_wddl_state(sim, diff, {{"d_0", false}, {"d_1", false}});
  Rng rng(3);
  // The initial evaluate phase carries d=0; keep the reference in step.
  ref.set_input("d_0", false);
  ref.set_input("d_1", false);
  ref.propagate();
  ref.step_clock();
  wddl_cycle(sim, {{"d_0", false}, {"d_1", false}});
  for (int cycle = 0; cycle < 12; ++cycle) {
    const bool d0 = rng.next_bool();
    const bool d1 = rng.next_bool();
    // WDDL evaluates data for this cycle; its registers expose the state
    // captured at the end of the previous evaluate phase — the same state
    // the (not yet stepped) reference shows.
    wddl_cycle(sim, {{"d_0", d0}, {"d_1", d1}});
    EXPECT_EQ(sim.output("q_0_t"), ref.output("q_0")) << cycle;
    EXPECT_EQ(sim.output("q_0_f"), !ref.output("q_0")) << cycle;
    EXPECT_EQ(sim.output("q_1_t"), ref.output("q_1")) << cycle;
    EXPECT_EQ(sim.output("q_1_f"), !ref.output("q_1")) << cycle;
    ref.set_input("d_0", d0);
    ref.set_input("d_1", d1);
    ref.propagate();
    ref.step_clock();
  }
}

TEST_F(WddlDiffTest, TieCompoundsArePrechargeConsistent) {
  Netlist rtl("ties", base_);
  const NetId one = rtl.add_net("one");
  const NetId a = rtl.add_net("a");
  const NetId y = rtl.add_net("y");
  rtl.add_port("a", PinDir::kInput, a);
  rtl.add_port("y", PinDir::kOutput, y);
  add_gate(rtl, "TIE1", "t1", {}, one);
  add_gate(rtl, "OR2", "g", {a, one}, y);
  SubstitutionResult res = substitute_cells(rtl, wlib_);
  const Netlist diff = expand_differential(res.fat, wlib_);

  FunctionalSim sim(diff);
  // Precharge: clock low, inputs (0,0) -> everything 0, even with the tie.
  sim.set_input("clk", false);
  sim.set_input("a_t", false);
  sim.set_input("a_f", false);
  sim.propagate();
  for (NetId id : diff.net_ids()) {
    EXPECT_FALSE(sim.net_value(id)) << diff.net(id).name;
  }
  // Evaluate: tie presents 1, OR output true rail rises.
  sim.set_input("clk", true);
  sim.set_input("a_t", false);
  sim.set_input("a_f", true);
  sim.propagate();
  EXPECT_TRUE(sim.output("y_t"));
  EXPECT_FALSE(sim.output("y_f"));
}

}  // namespace
}  // namespace secflow
