#include "sta/sta.h"

#include <gtest/gtest.h>

#include "flow/flow.h"
#include "crypto/des.h"
#include "liberty/builtin_lib.h"
#include "synth/hdl.h"
#include "synth/techmap.h"

namespace secflow {
namespace {

class StaTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), lib_);
  }
};

TEST_F(StaTest, SingleGateDelay) {
  const Netlist nl = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = ~(a & b);
    endmodule)");
  CapTable caps;
  // Fix the loads so the expected delay is computable by hand.
  for (NetId id : nl.net_ids()) caps[nl.net(id).name] = 10.0;
  TimingOptions opts;
  opts.input_delay_ps = 100.0;
  const TimingReport r = analyze_timing(nl, caps, opts);
  // Path: input (100) -> NAND2 (32 + 4.6*10 = 78) -> BUF (45 + 3.2*10 = 77).
  EXPECT_NEAR(r.critical_delay_ps, 100.0 + 78.0 + 77.0, 1e-6);
  EXPECT_EQ(r.endpoint, "port y");
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_NEAR(r.critical_path.back().arrival_ps, r.critical_delay_ps, 1e-9);
}

TEST_F(StaTest, DeeperConeIsSlower) {
  const Netlist shallow = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = a & b;
    endmodule)");
  const Netlist deep = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = ((a & b) | (a ^ b)) ^ (a | ~b);
    endmodule)");
  EXPECT_GT(analyze_timing(deep, {}).critical_delay_ps,
            analyze_timing(shallow, {}).critical_delay_ps);
}

TEST_F(StaTest, LoadIncreasesDelay) {
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = ~a;
    endmodule)");
  CapTable light, heavy;
  for (NetId id : nl.net_ids()) {
    light[nl.net(id).name] = 2.0;
    heavy[nl.net(id).name] = 80.0;
  }
  EXPECT_GT(analyze_timing(nl, heavy).critical_delay_ps,
            analyze_timing(nl, light).critical_delay_ps);
}

TEST_F(StaTest, SequentialEndpointsAreFlopDPins) {
  const Netlist nl = map_hdl(R"(
    module m (input clk, input a, output q);
      reg r;
      always @(posedge clk) r <= a ^ r;
      assign q = r;
    endmodule)");
  const TimingReport r = analyze_timing(nl, {});
  // The XOR feedback path into the register dominates the BUF to q.
  EXPECT_GT(r.critical_delay_ps, 0.0);
  EXPECT_GT(r.min_period_ps, 0.0);
}

TEST_F(StaTest, PredictsDfaGlitchBoundary) {
  // The DFA experiment: a glitch is caught when the period is too short
  // for the evaluation wave; STA's critical delay on the differential
  // netlist predicts the boundary seen by simulation (bench_sec43).
  const auto lib = builtin_stdcell018();
  const SecureFlowResult sec = run_secure_flow(make_des_dpa_circuit(), lib);
  const TimingReport r = analyze_timing(sec.diff, sec.caps);
  // Clock gating + master capture at T/2: a glitched period below
  // 2 * (critical delay - margins) must alarm; the simulated boundary in
  // bench_sec43 sits between 3.2 and 4.8 ns, so the STA critical delay
  // must fall in roughly [1.6, 2.6] ns.
  EXPECT_GT(r.critical_delay_ps, 1200.0);
  EXPECT_LT(r.critical_delay_ps, 3000.0);
  // And the nominal evaluate half-cycle (4 ns) has positive slack.
  EXPECT_LT(r.critical_delay_ps, 4000.0);
}

TEST_F(StaTest, ReportTextContainsPath) {
  const Netlist nl = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = a ^ b;
    endmodule)");
  const TimingReport r = analyze_timing(nl, {});
  const std::string text = timing_report_text(r);
  EXPECT_NE(text.find("critical delay"), std::string::npos);
  EXPECT_NE(text.find("port y"), std::string::npos);
}

}  // namespace
}  // namespace secflow
