#include "extract/extract.h"

#include <gtest/gtest.h>

#include "base/error.h"

#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "pnr/decompose.h"
#include "pnr/place.h"
#include "pnr/route.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

class ExtractTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();
};

TEST_F(ExtractTest, WireCapScalesWithLength) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {100000, 10000}};
  DefNet short_net{"short", {Segment{{0, 0}, {10000, 0}, 0, 280}}, {}};
  DefNet long_net{"long", {Segment{{0, 5000}, {80000, 5000}, 0, 280}}, {}};
  d.nets = {short_net, long_net};
  Netlist nl("empty", lib_);  // no pins

  const Extraction ex = extract_parasitics(d, nl);
  const double cs = ex.find("short")->total_cap_ff();
  const double cl = ex.find("long")->total_cap_ff();
  EXPECT_GT(cs, 0.0);
  EXPECT_NEAR(cl / cs, 8.0, 0.01);  // area+fringe both linear in length
  EXPECT_NEAR(ex.find("long")->res_kohm / ex.find("short")->res_kohm, 8.0,
              0.01);
}

TEST_F(ExtractTest, ViasAddCapAndResistance) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {10000, 10000}};
  DefNet plain{"plain", {Segment{{0, 0}, {5000, 0}, 0, 280}}, {}};
  DefNet with_via{"via",
                  {Segment{{0, 560}, {5000, 560}, 0, 280}},
                  {DefVia{{5000, 560}, 0, 1}}};
  d.nets = {plain, with_via};
  Netlist nl("empty", lib_);
  const Extraction ex = extract_parasitics(d, nl);
  EXPECT_GT(ex.find("via")->total_cap_ff(), ex.find("plain")->total_cap_ff());
  EXPECT_GT(ex.find("via")->res_kohm, ex.find("plain")->res_kohm);
}

TEST_F(ExtractTest, CouplingOnlyBetweenParallelNeighbours) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {100000, 100000}};
  // a and b run parallel at one pitch; c is far away; e is perpendicular.
  d.nets = {
      DefNet{"a", {Segment{{0, 0}, {50000, 0}, 0, 280}}, {}},
      DefNet{"b", {Segment{{0, 560}, {50000, 560}, 0, 280}}, {}},
      DefNet{"c", {Segment{{0, 50000}, {50000, 50000}, 0, 280}}, {}},
      DefNet{"e", {Segment{{10000, -20000}, {10000, 20000}, 1, 280}}, {}},
  };
  Netlist nl("empty", lib_);
  const Extraction ex = extract_parasitics(d, nl);
  EXPECT_GT(ex.find("a")->coupling_cap_ff, 0.0);
  EXPECT_DOUBLE_EQ(ex.find("a")->coupling_cap_ff,
                   ex.find("b")->coupling_cap_ff);
  EXPECT_DOUBLE_EQ(ex.find("c")->coupling_cap_ff, 0.0);
  EXPECT_DOUBLE_EQ(ex.find("e")->coupling_cap_ff, 0.0);
  ASSERT_EQ(ex.find("a")->couplings.size(), 1u);
  EXPECT_EQ(ex.find("a")->couplings[0].first, "b");
}

TEST_F(ExtractTest, CouplingFallsWithSeparation) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {100000, 100000}};
  d.nets = {
      DefNet{"x", {Segment{{0, 0}, {50000, 0}, 0, 280}}, {}},
      DefNet{"near", {Segment{{0, 560}, {50000, 560}, 0, 280}}, {}},
      DefNet{"far", {Segment{{0, -1120}, {50000, -1120}, 0, 280}}, {}},
  };
  Netlist nl("empty", lib_);
  const Extraction ex = extract_parasitics(d, nl);
  double c_near = 0, c_far = 0;
  for (const auto& [other, c] : ex.find("x")->couplings) {
    if (other == "near") c_near = c;
    if (other == "far") c_far = c;
  }
  EXPECT_GT(c_near, c_far);
  EXPECT_GT(c_far, 0.0);
}

TEST_F(ExtractTest, PinCapsComeFromNetlist) {
  Netlist nl("t", lib_);
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "INV", "u1", {a}, y);
  add_gate(nl, "NAND2", "u2", {a, y}, nl.add_net("z"));

  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {10000, 10000}};
  d.nets = {DefNet{"a", {Segment{{0, 0}, {1000, 0}, 0, 280}}, {}},
            DefNet{"y", {Segment{{0, 560}, {1000, 560}, 0, 280}}, {}}};
  const Extraction ex = extract_parasitics(d, nl);
  // a feeds INV.A (2.0) + NAND2.A (2.1); y feeds NAND2.B (2.1).
  EXPECT_NEAR(ex.find("a")->pin_cap_ff, 4.1, 1e-9);
  EXPECT_NEAR(ex.find("y")->pin_cap_ff, 2.1, 1e-9);
}

TEST_F(ExtractTest, VariationIsDeterministicPerSeed) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {100000, 10000}};
  d.nets = {DefNet{"n", {Segment{{0, 0}, {50000, 0}, 0, 280}}, {}}};
  Netlist nl("empty", lib_);
  ExtractOptions o1;
  o1.variation_sigma = 0.05;
  o1.seed = 42;
  ExtractOptions o2 = o1;
  ExtractOptions o3 = o1;
  o3.seed = 43;
  const double c1 = extract_parasitics(d, nl, o1).find("n")->total_cap_ff();
  const double c2 = extract_parasitics(d, nl, o2).find("n")->total_cap_ff();
  const double c3 = extract_parasitics(d, nl, o3).find("n")->total_cap_ff();
  EXPECT_DOUBLE_EQ(c1, c2);
  EXPECT_NE(c1, c3);
}

TEST_F(ExtractTest, CapTableCoversInternalNets) {
  Netlist nl("t", lib_);
  const NetId a = nl.add_net("a");
  const NetId inner = nl.add_net("inner");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "INV", "u1", {a}, inner);
  add_gate(nl, "INV", "u2", {inner}, y);

  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {10000, 10000}};
  d.nets = {DefNet{"a", {Segment{{0, 0}, {1000, 0}, 0, 280}}, {}}};
  const Extraction ex = extract_parasitics(d, nl);
  const auto table = build_cap_table(nl, ex, 0.8);
  ASSERT_TRUE(table.contains("inner"));
  // inner: internal default 0.8 + INV.A 2.0.
  EXPECT_NEAR(table.at("inner"), 2.8, 1e-9);
  // a: extracted wire cap + pin cap.
  EXPECT_GT(table.at("a"), 2.0);
}


TEST_F(ExtractTest, BalanceRailCapsEqualizesPairs) {
  std::unordered_map<std::string, double> caps = {
      {"n1_t", 10.0}, {"n1_f", 14.0}, {"n2_t", 8.0}, {"n2_f", 8.0},
      {"clk", 30.0}, {"lonely_t", 5.0}};
  const int adjusted = balance_rail_caps(caps, 1.0);
  EXPECT_EQ(adjusted, 2);
  EXPECT_DOUBLE_EQ(caps["n1_t"], 14.0);
  EXPECT_DOUBLE_EQ(caps["n1_f"], 14.0);
  EXPECT_DOUBLE_EQ(caps["n2_t"], 8.0);
  EXPECT_DOUBLE_EQ(caps["clk"], 30.0);       // untouched
  EXPECT_DOUBLE_EQ(caps["lonely_t"], 5.0);   // unpaired: untouched
}

TEST_F(ExtractTest, BalanceRailCapsPartialStrength) {
  std::unordered_map<std::string, double> caps = {{"a_t", 10.0},
                                                  {"a_f", 20.0}};
  balance_rail_caps(caps, 0.5);
  EXPECT_DOUBLE_EQ(caps["a_t"], 15.0);
  EXPECT_DOUBLE_EQ(caps["a_f"], 20.0);
  EXPECT_THROW(balance_rail_caps(caps, 1.5), Error);
}

// End-to-end: matched rails from the secure pipeline, mismatched nets from
// the regular one — the crux of the countermeasure.
TEST_F(ExtractTest, DifferentialRailsExtractMatched) {
  const Netlist rtl = technology_map(parse_hdl(R"(
    module m (input a, input b, input c, output y);
      assign y = (a & b) ^ c;
    endmodule)"),
                                     lib_);
  WddlLibrary wlib(lib_);
  SubstitutionResult sub = substitute_cells(rtl, wlib);
  LefGenOptions fat_opts;
  fat_opts.wire_scale = 2.0;
  const LefLibrary fat_lef = generate_lef(*wlib.fat_library(), fat_opts);
  DefDesign fat_def = place_design(sub.fat, fat_lef);
  route_design(sub.fat, fat_lef, fat_def);
  const Process018 pr;
  const DefDesign diff = decompose_interconnect(
      fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
  const Netlist diff_nl = expand_differential(sub.fat, wlib);

  const Extraction ex = extract_parasitics(diff, diff_nl);
  const auto mismatch = rail_mismatch_ff(ex);
  EXPECT_FALSE(mismatch.empty());
  for (const auto& [net, mm] : mismatch) {
    // Wire geometry is exactly matched; only pin-cap asymmetry of the
    // compound internals remains, which is bounded by a few fF.
    EXPECT_LT(mm, 8.0) << net;
  }
}

}  // namespace
}  // namespace secflow
