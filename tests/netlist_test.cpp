#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"

namespace secflow {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();
};

TEST_F(NetlistTest, BuildSmallNetlist) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("b", PinDir::kInput, b);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "NAND2", "u1", {a, b}, y);

  EXPECT_EQ(nl.n_nets(), 3u);
  EXPECT_EQ(nl.n_instances(), 1u);
  EXPECT_EQ(nl.n_ports(), 3u);
  nl.validate();

  const auto drv = nl.driver(y);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(nl.instance(drv->inst).name, "u1");
  EXPECT_EQ(nl.sinks(a).size(), 1u);
  EXPECT_TRUE(nl.driving_port(a).has_value());
  EXPECT_FALSE(nl.driving_port(y).has_value());
}

TEST_F(NetlistTest, DuplicateNamesRejected) {
  Netlist nl("top", lib_);
  nl.add_net("n");
  EXPECT_THROW(nl.add_net("n"), Error);
  const NetId n = nl.find_net("n");
  nl.add_port("p", PinDir::kInput, n);
  EXPECT_THROW(nl.add_port("p", PinDir::kInput, n), Error);
  nl.add_instance("i", lib_->find("INV"));
  EXPECT_THROW(nl.add_instance("i", lib_->find("INV")), Error);
}

TEST_F(NetlistTest, GetOrAddNetIdempotent) {
  Netlist nl("top", lib_);
  const NetId a = nl.get_or_add_net("a");
  EXPECT_EQ(nl.get_or_add_net("a"), a);
  EXPECT_EQ(nl.n_nets(), 1u);
}

TEST_F(NetlistTest, ConnectDisconnect) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const InstId inv = nl.add_instance("u", lib_->find("INV"));
  nl.connect(inv, 0, a);
  EXPECT_EQ(nl.net(a).pins.size(), 1u);
  // Double connect on the same pin is an error.
  EXPECT_THROW(nl.connect(inv, 0, a), Error);
  nl.disconnect(inv, 0);
  EXPECT_TRUE(nl.net(a).pins.empty());
  // Disconnecting an open pin is a no-op.
  nl.disconnect(inv, 0);
}

TEST_F(NetlistTest, ValidateCatchesFloatingInput) {
  Netlist nl("top", lib_);
  const NetId y = nl.add_net("y");
  const InstId inv = nl.add_instance("u", lib_->find("INV"));
  nl.connect(inv, lib_->cell("INV").output_pin(), y);
  EXPECT_THROW(nl.validate(), Error);
}

TEST_F(NetlistTest, ValidateCatchesDoubleDriver) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  add_gate(nl, "INV", "u1", {a}, y);
  add_gate(nl, "INV", "u2", {a}, y);
  EXPECT_THROW(nl.validate(), Error);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  nl.add_port("a", PinDir::kInput, a);
  const InstId g2 = add_gate(nl, "INV", "g2", {n1}, n2);
  const InstId g1 = add_gate(nl, "INV", "g1", {a}, n1);
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 2u);
  auto pos = [&](InstId id) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(g1), pos(g2));
}

TEST_F(NetlistTest, TopologicalOrderDetectsCycle) {
  Netlist nl("top", lib_);
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  add_gate(nl, "INV", "g1", {n1}, n2);
  add_gate(nl, "INV", "g2", {n2}, n1);
  EXPECT_THROW(nl.topological_order(), Error);
}

TEST_F(NetlistTest, FlopBreaksCombinationalCycle) {
  // A flop in the loop makes it a legal sequential circuit.
  Netlist nl("top", lib_);
  const NetId ck = nl.add_net("ck");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  nl.add_port("ck", PinDir::kInput, ck);
  add_gate(nl, "INV", "g", {q}, d);
  add_flop(nl, "DFF", "r", d, ck, q);
  EXPECT_EQ(nl.topological_order().size(), 2u);
}

TEST_F(NetlistTest, LevelsComputed) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  nl.add_port("a", PinDir::kInput, a);
  const InstId g1 = add_gate(nl, "INV", "g1", {a}, n1);
  const InstId g2 = add_gate(nl, "NAND2", "g2", {a, n1}, n2);
  const auto lv = nl.levels();
  EXPECT_EQ(lv[g1.index()], 0);
  EXPECT_EQ(lv[g2.index()], 1);
}

TEST_F(NetlistTest, AreaAndKindCounts) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  const NetId ck = nl.add_net("ck");
  const NetId q = nl.add_net("q");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("ck", PinDir::kInput, ck);
  add_gate(nl, "INV", "u1", {a}, y);
  add_flop(nl, "DFF", "r1", y, ck, q);
  EXPECT_NEAR(nl.total_area_um2(), 6.6528 + 46.5696, 1e-9);
  EXPECT_EQ(nl.count_kind(CellKind::kCombinational), 1);
  EXPECT_EQ(nl.count_kind(CellKind::kFlop), 1);
}

TEST_F(NetlistTest, FanoutCountsSinksAndOutputPorts) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "INV", "u1", {a}, y);
  add_gate(nl, "INV", "u2", {y}, nl.add_net("z"));
  EXPECT_EQ(nl.fanout(y), 2);  // one sink pin + one output port
  EXPECT_EQ(nl.fanout(a), 1);
}

TEST_F(NetlistTest, CellHistogram) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  nl.add_port("a", PinDir::kInput, a);
  add_gate(nl, "INV", "u1", {a}, nl.add_net("n1"));
  add_gate(nl, "INV", "u2", {a}, nl.add_net("n2"));
  add_gate(nl, "NAND2", "u3", {a, a}, nl.add_net("n3"));
  const auto h = cell_histogram(nl);
  EXPECT_EQ(h.at("INV"), 2);
  EXPECT_EQ(h.at("NAND2"), 1);
}

// --- FunctionalSim -------------------------------------------------------

TEST_F(NetlistTest, FunctionalSimCombinational) {
  Netlist nl("top", lib_);
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.add_port("a", PinDir::kInput, a);
  nl.add_port("b", PinDir::kInput, b);
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "XOR2", "u1", {a, b}, y);

  FunctionalSim sim(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input("a", av);
      sim.set_input("b", bv);
      sim.propagate();
      EXPECT_EQ(sim.output("y"), (av ^ bv) != 0);
    }
  }
}

TEST_F(NetlistTest, FunctionalSimSequentialToggler) {
  // q' = !q toggles on every clock edge.
  Netlist nl("top", lib_);
  const NetId ck = nl.add_net("ck");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  nl.add_port("ck", PinDir::kInput, ck);
  add_gate(nl, "INV", "g", {q}, d);
  const InstId r = add_flop(nl, "DFF", "r", d, ck, q);

  FunctionalSim sim(nl);
  sim.propagate();
  EXPECT_FALSE(sim.flop_state(r));
  sim.step_clock();
  EXPECT_TRUE(sim.flop_state(r));
  sim.step_clock();
  EXPECT_FALSE(sim.flop_state(r));
}

TEST_F(NetlistTest, FunctionalSimTieCells) {
  Netlist nl("top", lib_);
  const NetId one = nl.add_net("one");
  const NetId zero = nl.add_net("zero");
  const NetId y = nl.add_net("y");
  nl.add_port("y", PinDir::kOutput, y);
  add_gate(nl, "TIE1", "t1", {}, one);
  add_gate(nl, "TIE0", "t0", {}, zero);
  add_gate(nl, "AND2", "u", {one, zero}, y);
  FunctionalSim sim(nl);
  sim.propagate();
  EXPECT_FALSE(sim.output("y"));
  EXPECT_TRUE(sim.net_value("one"));
  EXPECT_FALSE(sim.net_value("zero"));
}

TEST_F(NetlistTest, FunctionalSimSimultaneousCapture) {
  // Two flops swap values each cycle: r2.D = r1.Q, r1.D = r2.Q.
  Netlist nl("top", lib_);
  const NetId ck = nl.add_net("ck");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  nl.add_port("ck", PinDir::kInput, ck);
  const InstId r1 = add_flop(nl, "DFF", "r1", q2, ck, q1);
  const InstId r2 = add_flop(nl, "DFF", "r2", q1, ck, q2);
  FunctionalSim sim(nl);
  sim.set_flop_state(r1, true);
  sim.set_flop_state(r2, false);
  sim.propagate();
  sim.step_clock();
  EXPECT_FALSE(sim.flop_state(r1));
  EXPECT_TRUE(sim.flop_state(r2));
  sim.step_clock();
  EXPECT_TRUE(sim.flop_state(r1));
  EXPECT_FALSE(sim.flop_state(r2));
}

}  // namespace
}  // namespace secflow
