// The compile-once / simulate-many contract of CompiledSimModel:
//
//   * reset() + reuse is bit-identical to fresh construction, per trace,
//     at any thread count (simulate_traces reuses one simulator per
//     worker chunk);
//   * one immutable model is safely shared by all workers (this suite is
//     named Parallel* so the TSan certification build runs it);
//   * the exp-recurrence charge deposit conserves the total charge and
//     matches the two-exp closed form per sample;
//   * id-based accessors agree with the string API, and the legacy
//     (netlist, caps, opts) constructor behaves like an explicit model.
//
//   cmake -B build-tsan -DSECFLOW_SANITIZE=thread && ctest -R Parallel
#include "sim/sim_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/rng.h"
#include "crypto/des.h"
#include "liberty/builtin_lib.h"
#include "sim/trace_sim.h"
#include "synth/hdl.h"
#include "synth/techmap.h"

namespace secflow {
namespace {

class ParallelSimModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = builtin_stdcell018();
    rtl_ = new Netlist(technology_map(make_des_dpa_circuit(), lib_));
  }
  static void TearDownTestSuite() {
    delete rtl_;
    rtl_ = nullptr;
    lib_.reset();
  }

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), lib_);
  }

  static std::shared_ptr<const CellLibrary> lib_;
  static Netlist* rtl_;
};

std::shared_ptr<const CellLibrary> ParallelSimModel::lib_;
Netlist* ParallelSimModel::rtl_ = nullptr;

/// The reduced-DES encryption task, id-resolved against the model once.
TraceTask des_task(const CompiledSimModel& model) {
  const Netlist& nl = model.netlist();
  auto ports = std::make_shared<std::vector<std::vector<PortId>>>();
  auto resolve = [&nl](const std::string& base, int width) {
    std::vector<PortId> ids;
    for (int i = 0; i < width; ++i) {
      ids.push_back(nl.find_port(base + "_" + std::to_string(i)));
    }
    return ids;
  };
  ports->push_back(resolve("k", 6));
  ports->push_back(resolve("pl", 4));
  ports->push_back(resolve("pr", 6));
  ports->push_back(resolve("cl", 4));
  return [ports](PowerSimulator& sim, Rng& rng, int) {
    auto drive = [&sim](const std::vector<PortId>& ids, std::uint32_t v) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        sim.set_input(ids[i], (v >> i) & 1);
      }
    };
    drive((*ports)[0], 46);
    drive((*ports)[1], static_cast<std::uint32_t>(rng.next_below(16)));
    drive((*ports)[2], static_cast<std::uint32_t>(rng.next_below(64)));
    sim.settle();
    sim.run_cycle();
    drive((*ports)[1], static_cast<std::uint32_t>(rng.next_below(16)));
    drive((*ports)[2], static_cast<std::uint32_t>(rng.next_below(64)));
    sim.run_cycle();
    SimTrace out;
    out.cycle = sim.run_cycle();
    sim.run_cycle();
    for (std::size_t i = 0; i < (*ports)[3].size(); ++i) {
      if (sim.output((*ports)[3][i])) out.observable |= 1u << i;
    }
    return out;
  };
}

void expect_traces_equal(const std::vector<SimTrace>& a,
                         const std::vector<SimTrace>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].observable, b[i].observable) << what << " trace " << i;
    EXPECT_EQ(a[i].cycle.energy_pj, b[i].cycle.energy_pj)
        << what << " trace " << i;
    EXPECT_EQ(a[i].cycle.transitions, b[i].cycle.transitions)
        << what << " trace " << i;
    ASSERT_EQ(a[i].cycle.current_ma, b[i].cycle.current_ma)
        << what << " trace " << i;
  }
}

TEST_F(ParallelSimModel, ResetReuseBitIdenticalToFreshConstruction) {
  const CompiledSimModel model(*rtl_, {}, PowerSimOptions{});
  const TraceTask task = des_task(model);
  const int n = 16;
  const std::uint64_t seed = 77;

  // Reference: a freshly constructed simulator per trace.
  std::vector<SimTrace> fresh(n);
  for (int i = 0; i < n; ++i) {
    PowerSimulator sim(model);
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
    fresh[static_cast<std::size_t>(i)] = task(sim, rng, i);
  }

  // One simulator, reset() between traces.
  {
    PowerSimulator sim(model);
    std::vector<SimTrace> reused(n);
    for (int i = 0; i < n; ++i) {
      if (i != 0) sim.reset();
      Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
      reused[static_cast<std::size_t>(i)] = task(sim, rng, i);
    }
    expect_traces_equal(reused, fresh, "serial reset-reuse");
  }

  // simulate_traces (one simulator per worker chunk) at every thread
  // count, against the same reference.
  for (int threads : {1, 2, 4, 8}) {
    Parallelism par;
    par.n_threads = threads;
    const std::vector<SimTrace> got =
        simulate_traces(model, n, seed, task, par);
    expect_traces_equal(got, fresh,
                        "simulate_traces @" + std::to_string(threads));
  }
}

TEST_F(ParallelSimModel, SharedModelMatchesLegacyPerCallCompilation) {
  // The legacy (netlist, caps, opts) entry point compiles a fresh model;
  // both paths must agree bit-for-bit while 8 workers share one model.
  const CompiledSimModel model(*rtl_, {}, PowerSimOptions{});
  const TraceTask task = des_task(model);
  Parallelism par;
  par.n_threads = 8;
  const std::vector<SimTrace> shared =
      simulate_traces(model, 24, 123, task, par);
  const std::vector<SimTrace> legacy =
      simulate_traces(*rtl_, {}, PowerSimOptions{}, 24, 123, task, par);
  expect_traces_equal(shared, legacy, "shared vs legacy");
}

/// The seed's two-std::exp-per-bin deposit, kept as the reference closed
/// form: charge in [t0, t1) is Q (e^{-(t0-t)/tau} - e^{-(t1-t)/tau}).
std::vector<double> closed_form_deposit(int n_samples, double dt, double t_ps,
                                        double charge_fc, double tau_ps) {
  std::vector<double> trace(static_cast<std::size_t>(n_samples), 0.0);
  int bin = static_cast<int>(t_ps / dt);
  if (bin >= n_samples) return trace;
  if (bin < 0) bin = 0;
  double remaining = charge_fc;
  for (int k = bin; k < n_samples && remaining > 1e-9; ++k) {
    const double t0 = std::max(t_ps, k * dt);
    const double t1 = (k + 1) * dt;
    if (t1 <= t0) continue;
    const double q = charge_fc * (std::exp(-(t0 - t_ps) / tau_ps) -
                                  std::exp(-(t1 - t_ps) / tau_ps));
    trace[static_cast<std::size_t>(k)] += q / dt;
    remaining -= q;
  }
  return trace;
}

TEST_F(ParallelSimModel, RecurrenceDepositMatchesClosedFormAndConservesQ) {
  // One buffer: a 0->1 step makes exactly two rising events — net a
  // (undriven: tau = min_tau) and net y (driven: tau = R_drive * C) — at
  // known times, so the whole cycle trace has an exact closed form.
  const Netlist nl = map_hdl(R"(
    module m (input a, output y);
      assign y = a;
    endmodule)");
  CapTable caps;
  caps["a"] = 12.0;
  caps["y"] = 50.0;
  const PowerSimOptions opts;
  const CompiledSimModel model(nl, caps, opts);
  PowerSimulator sim(model);
  sim.set_input("a", false);
  sim.settle();
  sim.set_input("a", true);
  const CycleTrace t = sim.run_cycle();

  const NetId a = nl.find_net("a");
  const NetId y = nl.find_net("y");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(y.valid());
  ASSERT_EQ(model.tau_ps(a.index()), opts.min_tau_ps);
  ASSERT_GT(model.tau_ps(y.index()), opts.min_tau_ps);
  ASSERT_EQ(model.gates().size(), 1u);

  const double dt = model.sample_dt_ps();
  const int n = model.samples_per_cycle();
  ASSERT_EQ(t.current_ma.size(), static_cast<std::size_t>(n));
  // Event times: the input arrives at input_delay; the buffer output
  // follows after its compiled load-dependent delay.
  const double t_a = opts.input_delay_ps;
  const double t_y = t_a + model.gates()[0].delay_ps;
  const std::vector<double> exp_a = closed_form_deposit(
      n, dt, t_a, model.charge_fc(a.index()), model.tau_ps(a.index()));
  const std::vector<double> exp_y = closed_form_deposit(
      n, dt, t_y, model.charge_fc(y.index()), model.tau_ps(y.index()));
  for (int k = 0; k < n; ++k) {
    const std::size_t i = static_cast<std::size_t>(k);
    ASSERT_NEAR(t.current_ma[i], exp_a[i] + exp_y[i], 1e-9)
        << "sample " << k;
  }

  // Total sampled charge == the two rising charges (each deposit may
  // leave at most the 1e-9 fC truncation residue behind).
  double sum_fc = 0.0;
  for (double i_ma : t.current_ma) sum_fc += i_ma * dt;
  const double q_fc = model.charge_fc(a.index()) + model.charge_fc(y.index());
  EXPECT_NEAR(sum_fc, q_fc, 2e-9 + q_fc * 1e-12);
}

TEST_F(ParallelSimModel, IdOverloadsAgreeWithStringApi) {
  const Netlist nl = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = a ^ b;
    endmodule)");
  const CompiledSimModel model(nl, {}, PowerSimOptions{});
  const PortId pa = nl.find_port("a");
  const PortId pb = nl.find_port("b");
  const PortId py = nl.find_port("y");
  ASSERT_TRUE(pa.valid() && pb.valid() && py.valid());
  EXPECT_TRUE(model.is_data_input(pa));
  EXPECT_FALSE(model.is_data_input(py));

  PowerSimulator by_id(model);
  PowerSimulator by_name(model);
  for (int vec = 0; vec < 4; ++vec) {
    by_id.set_input(pa, vec & 1);
    by_id.set_input(pb, (vec >> 1) & 1);
    by_name.set_input("a", vec & 1);
    by_name.set_input("b", (vec >> 1) & 1);
    by_id.run_cycle();
    by_name.run_cycle();
    EXPECT_EQ(by_id.output(py), by_name.output("y")) << "vec " << vec;
    EXPECT_EQ(by_id.output_at_eval(py), by_name.output_at_eval("y"));
    EXPECT_EQ(by_id.net_value(nl.port(py).net), by_name.net_value("y"));
  }
  // Driving a non-input by id is rejected like the string API rejects it.
  EXPECT_THROW(by_id.set_input(py, true), Error);
  EXPECT_THROW(by_name.set_input("y", true), Error);
}

TEST_F(ParallelSimModel, LegacyConstructorMatchesExplicitModel) {
  const Netlist nl = map_hdl(R"(
    module m (input a, input b, output y);
      assign y = a & b;
    endmodule)");
  CapTable caps;
  caps["a"] = 3.0;
  caps["y"] = 7.5;
  const CompiledSimModel model(nl, caps, PowerSimOptions{});
  PowerSimulator explicit_sim(model);
  PowerSimulator legacy_sim(nl, caps, PowerSimOptions{});
  auto step = [](PowerSimulator& s, bool a, bool b) {
    s.set_input("a", a);
    s.set_input("b", b);
    return s.run_cycle();
  };
  for (int vec : {0, 3, 1, 2, 3, 0}) {
    const CycleTrace te = step(explicit_sim, vec & 1, (vec >> 1) & 1);
    const CycleTrace tl = step(legacy_sim, vec & 1, (vec >> 1) & 1);
    EXPECT_EQ(te.energy_pj, tl.energy_pj);
    EXPECT_EQ(te.transitions, tl.transitions);
    ASSERT_EQ(te.current_ma, tl.current_ma);
  }
}

}  // namespace
}  // namespace secflow
