#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "base/rng.h"
#include "ckpt/fingerprint.h"
#include "flow/flow.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/inject.h"
#include "fuzz/minimize.h"
#include "fuzz/oracles.h"
#include "fuzz/program.h"
#include "lec/lec.h"
#include "liberty/builtin_lib.h"
#include "obs/json.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

std::uint64_t design_seed(std::uint64_t run_seed, std::uint64_t i) {
  return Rng::stream(run_seed, i).next_u64();
}

// --- generator --------------------------------------------------------------

TEST(FuzzGenerator, DeterministicInSeed) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    const FuzzProgram a = generate_program(s);
    const FuzzProgram b = generate_program(s);
    EXPECT_EQ(a, b);
    EXPECT_EQ(emit_hdl(a), emit_hdl(b));
  }
  EXPECT_NE(emit_hdl(generate_program(1)), emit_hdl(generate_program(2)));
}

TEST(FuzzGenerator, ProducesElaborableSequentialDesigns) {
  int n_seq = 0, n_reset = 0, n_multi_out = 0;
  for (std::uint64_t s = 0; s < 32; ++s) {
    const FuzzProgram p = generate_program(s);
    if (!p.regs.empty()) {
      EXPECT_TRUE(p.has_clk);
      ++n_seq;
    }
    for (const FuzzSignal& in : p.ports_in) {
      if (in.name == "rst") ++n_reset;
    }
    if (p.ports_out.size() > 1) ++n_multi_out;
    // Every generated program must elaborate through the real HDL parser.
    EXPECT_NO_THROW(parse_hdl(emit_hdl(p))) << emit_hdl(p);
  }
  // The grammar exercises the sequential features it claims to cover.
  EXPECT_GT(n_seq, 0);
  EXPECT_GT(n_reset, 0);
  EXPECT_GT(n_multi_out, 0);
}

TEST(FuzzProgram, EmitParseRoundTrip) {
  for (std::uint64_t s = 0; s < 32; ++s) {
    const FuzzProgram p = generate_program(s);
    const FuzzProgram q = parse_fuzz_program(emit_hdl(p));
    EXPECT_EQ(p, q) << emit_hdl(p);
  }
}

// --- metamorphic transforms -------------------------------------------------

TEST(FuzzTransforms, RenameAndShuffleAreDigestNeutral) {
  for (std::uint64_t s = 0; s < 16; ++s) {
    const FuzzProgram p = generate_program(s);
    const std::uint64_t fp = fingerprint(parse_hdl(emit_hdl(p)));
    EXPECT_EQ(fp, fingerprint(parse_hdl(emit_hdl(rename_wires(p, s + 1)))));
    EXPECT_EQ(fp,
              fingerprint(parse_hdl(emit_hdl(shuffle_statements(p, s + 1)))));
  }
}

TEST(FuzzTransforms, PortPermutationIsLogicallyEquivalent) {
  auto base = builtin_stdcell018();
  for (std::uint64_t s = 0; s < 8; ++s) {
    const FuzzProgram p = generate_program(s);
    const Netlist a = technology_map(parse_hdl(emit_hdl(p)), base);
    const Netlist b =
        technology_map(parse_hdl(emit_hdl(permute_ports(p, s + 1))), base);
    EXPECT_TRUE(check_equivalence(a, b).equivalent) << emit_hdl(p);
  }
}

// --- oracle battery ---------------------------------------------------------

TEST(FuzzOracles, CleanDesignsPassTheBattery) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    OracleOptions opts;
    opts.seed = design_seed(1, i);
    opts.n_vectors = 100;
    const OracleReport rep =
        run_oracle_battery(generate_program(opts.seed), opts);
    const OracleVerdict* fail = rep.first_failure();
    EXPECT_TRUE(rep.all_ok())
        << (fail ? fail->oracle + ": " + fail->detail : "");
  }
}

TEST(FuzzOracles, BatteryDigestIsDeterministic) {
  OracleOptions opts;
  opts.seed = design_seed(1, 0);
  opts.n_vectors = 50;
  const FuzzProgram p = generate_program(opts.seed);
  EXPECT_EQ(run_oracle_battery(p, opts).digest(),
            run_oracle_battery(p, opts).digest());
}

/// Scan seeds for one where the requested fault has an injection site, and
/// return its failing report (the battery must object to every fault it
/// could plant).
OracleReport first_injectable_failure(FaultKind fault, bool deep,
                                      std::uint64_t* out_seed) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    OracleOptions opts;
    opts.seed = design_seed(7, i);
    opts.n_vectors = 200;
    opts.deep = deep;
    opts.inject = fault;
    const OracleReport rep =
        run_oracle_battery(generate_program(opts.seed), opts);
    if (!rep.injectable) continue;
    if (deep && rep.first_failure() == nullptr) continue;  // flow infeasible
    *out_seed = opts.seed;
    return rep;
  }
  ADD_FAILURE() << "no injectable design in 64 seeds for fault "
                << fault_kind_name(fault);
  return {};
}

TEST(FuzzInjection, PinSwapIsCaughtByCrossChecks) {
  std::uint64_t seed = 0;
  const OracleReport rep =
      first_injectable_failure(FaultKind::kSubstitutionPinSwap, false, &seed);
  ASSERT_NE(rep.first_failure(), nullptr) << "pin swap went unnoticed";
  EXPECT_FALSE(rep.injected_edit.empty());
  const std::string& oracle = rep.first_failure()->oracle;
  EXPECT_TRUE(oracle == "cross-lec-fat-rtl" || oracle == "cross-sim-fat-rtl")
      << oracle;
}

TEST(FuzzInjection, RailSwapIsCaughtByDifferentialSimulation) {
  std::uint64_t seed = 0;
  const OracleReport rep =
      first_injectable_failure(FaultKind::kRailSwap, false, &seed);
  ASSERT_NE(rep.first_failure(), nullptr) << "rail swap went unnoticed";
  // The crossed pair stays complementary and still switches once per
  // phase, so only the value-level agreement oracle can object.
  EXPECT_EQ(rep.first_failure()->oracle, "wddl-seq-agreement");
}

TEST(FuzzInjection, CapImbalanceIsCaughtByTheMatchedLoadBound) {
  std::uint64_t seed = 0;
  const OracleReport rep =
      first_injectable_failure(FaultKind::kCapImbalance, true, &seed);
  ASSERT_NE(rep.first_failure(), nullptr) << "cap imbalance went unnoticed";
  EXPECT_EQ(rep.first_failure()->oracle, "wddl-cap-mismatch");
}

// --- minimizer --------------------------------------------------------------

TEST(FuzzMinimizer, ShrinksAPinSwapReproducerToTenLinesOrFewer) {
  std::uint64_t seed = 0;
  const OracleReport rep =
      first_injectable_failure(FaultKind::kSubstitutionPinSwap, false, &seed);
  ASSERT_NE(rep.first_failure(), nullptr);
  const std::string oracle = rep.first_failure()->oracle;

  OracleOptions opts;
  opts.seed = seed;
  opts.n_vectors = 200;
  opts.inject = FaultKind::kSubstitutionPinSwap;
  const FuzzProgram p = generate_program(seed);
  const auto still_fails = [&](const FuzzProgram& cand) {
    const OracleReport r = run_oracle_battery(cand, opts);
    if (!r.injectable) return false;
    const OracleVerdict* f = r.first_failure();
    return f != nullptr && f->oracle == oracle;
  };
  const MinimizeResult m = minimize_program(p, still_fails, {});
  EXPECT_TRUE(still_fails(m.program));
  EXPECT_LE(m.final_lines, m.initial_lines);
  EXPECT_LE(m.final_lines, 10) << emit_hdl(m.program);
}

// --- fuzzer-found regression ------------------------------------------------

// Found by `fuzz --seed 1`: a constant driven through an inverter to an
// output port.  The LEC cone builder walks topological_order(), which
// interleaved tie cells with combinational gates by instance index; the
// substituted fat netlist creates its port buffer before the tie, so the
// buffer's cone was evaluated against an uninitialized input and the
// secure flow failed its own fat-vs-rtl equivalence check.
TEST(FuzzRegression, ConstantThroughInverterSurvivesSubstitutionLec) {
  const char* src =
      "module fz (input in0, output out2);\n"
      "  wire w0;\n"
      "  assign w0 = ~1'd0;\n"
      "  assign out2 = w0;\n"
      "endmodule\n";
  auto base = builtin_stdcell018();
  WddlLibrary wlib(base);
  const Netlist rtl =
      technology_map(parse_hdl(src), base, wddl_synth_constraints());
  const SubstitutionResult sub = substitute_cells(rtl, wlib);
  const LecResult lec = check_equivalence(sub.fat, rtl);
  EXPECT_TRUE(lec.equivalent)
      << (lec.mismatches.empty() ? "" : lec.mismatches.front().what);

  // The ordering contract the fix restored: every sequential/constant
  // source precedes every combinational gate.
  bool seen_comb = false;
  for (InstId id : sub.fat.topological_order()) {
    const bool comb = sub.fat.cell_of(id).kind == CellKind::kCombinational;
    EXPECT_FALSE(!comb && seen_comb)
        << "source " << sub.fat.instance(id).name << " after a gate";
    seen_comb |= comb;
  }

  OracleOptions opts;
  opts.seed = 1;
  opts.n_vectors = 50;
  const OracleReport rep =
      run_oracle_battery(parse_fuzz_program(src), opts);
  const OracleVerdict* fail = rep.first_failure();
  EXPECT_TRUE(rep.all_ok()) << (fail ? fail->oracle + ": " + fail->detail : "");
}

// --- campaign driver and replay ---------------------------------------------

class FuzzRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = ::testing::TempDir() + "secflow_fuzz_corpus";
    std::filesystem::remove_all(corpus_);
  }
  void TearDown() override { std::filesystem::remove_all(corpus_); }
  std::string corpus_;
};

TEST_F(FuzzRunTest, CleanRunWritesNoCorpus) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.count = 10;
  opts.deep_every = 0;
  opts.corpus_dir = corpus_;
  opts.oracles.n_vectors = 100;
  const FuzzRunResult run = run_fuzz(opts);
  EXPECT_TRUE(run.all_ok());
  EXPECT_EQ(run.n_ok, 10);
  EXPECT_FALSE(std::filesystem::exists(corpus_));
}

TEST_F(FuzzRunTest, InjectedFaultYieldsAReplayableReproducer) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.count = 20;
  opts.deep_every = 0;
  opts.corpus_dir = corpus_;
  opts.inject = FaultKind::kSubstitutionPinSwap;
  opts.oracles.n_vectors = 200;
  const FuzzRunResult run = run_fuzz(opts);
  ASSERT_EQ(run.n_failed, 1);

  const FuzzCaseResult* failed = nullptr;
  for (const FuzzCaseResult& c : run.cases) {
    if (!c.ok && !c.skipped) failed = &c;
  }
  ASSERT_NE(failed, nullptr);
  EXPECT_LE(failed->minimized_lines, 10);
  ASSERT_TRUE(std::filesystem::exists(failed->repro_path));

  // The stored document is strict JSON with the expected schema tag.
  std::ifstream in(failed->repro_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue j = json_parse(ss.str());
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), "secflow.fuzz-repro/1");

  // Replays are bit-exact: same digest on every replay, fault still live.
  const ReplayResult r1 = replay_repro(failed->repro_path);
  const ReplayResult r2 = replay_repro(failed->repro_path);
  EXPECT_TRUE(r1.digest_match);
  EXPECT_TRUE(r1.still_fails);
  EXPECT_EQ(r1.oracle, failed->oracle);
  EXPECT_EQ(r1.replayed_digest, r2.replayed_digest);
}

TEST_F(FuzzRunTest, RunsAreDeterministicInTheSeed) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 5;
  opts.deep_every = 0;
  opts.corpus_dir = corpus_;
  opts.oracles.n_vectors = 50;
  const FuzzRunResult a = run_fuzz(opts);
  const FuzzRunResult b = run_fuzz(opts);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].design_seed, b.cases[i].design_seed);
    EXPECT_EQ(a.cases[i].ok, b.cases[i].ok);
  }
}

}  // namespace
}  // namespace secflow
