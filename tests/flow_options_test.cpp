// Exhaustive FlowOptions::validate() coverage: every rejection rule fires
// with a descriptive Error, and legal configurations (including the
// checkpoint fields) all pass.
#include "flow/flow.h"

#include <gtest/gtest.h>

#include "base/error.h"

namespace secflow {
namespace {

/// The message should tell the user which knob is wrong, not just "invalid
/// options".
void expect_invalid(const FlowOptions& o, const std::string& needle) {
  try {
    o.validate();
    FAIL() << "expected Error mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FlowOptionsValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(FlowOptions{}.validate());
}

TEST(FlowOptionsValidate, ShieldingRequiresDetailedRouting) {
  FlowOptions o;
  o.shielded_pairs = true;
  o.route_mode = RouteMode::kQuickLShaped;
  expect_invalid(o, "shielded_pairs");
  o.route_mode = RouteMode::kDetailed;
  EXPECT_NO_THROW(o.validate());
}

TEST(FlowOptionsValidate, PlacementRanges) {
  FlowOptions o;
  o.place.aspect_ratio = 0.0;
  expect_invalid(o, "aspect_ratio");
  o.place.aspect_ratio = -2.0;
  expect_invalid(o, "aspect_ratio");

  o = FlowOptions{};
  o.place.fill_factor = 0.0;
  expect_invalid(o, "fill_factor");
  o.place.fill_factor = 1.5;
  expect_invalid(o, "fill_factor");
  o.place.fill_factor = 1.0;  // boundary: legal
  EXPECT_NO_THROW(o.validate());

  o = FlowOptions{};
  o.place.sa_moves_per_instance = -1;
  expect_invalid(o, "sa_moves_per_instance");

  o = FlowOptions{};
  o.place.sa_batch = 0;
  expect_invalid(o, "sa_batch");
}

TEST(FlowOptionsValidate, ExtractionRanges) {
  FlowOptions o;
  o.extract.coupling_max_sep_um = -0.1;
  expect_invalid(o, "coupling_max_sep_um");
  o.extract.coupling_max_sep_um = 0.0;  // boundary: legal (no coupling)
  EXPECT_NO_THROW(o.validate());

  o = FlowOptions{};
  o.extract.variation_sigma = -1e-9;
  expect_invalid(o, "variation_sigma");
}

TEST(FlowOptionsValidate, RoutingRanges) {
  FlowOptions o;
  o.route.max_iterations = 0;
  expect_invalid(o, "max_iterations");

  o = FlowOptions{};
  o.route.window_margin = -1;
  expect_invalid(o, "window_margin");
  o.route.window_margin = 0;  // boundary: legal (pin bounding box itself)
  EXPECT_NO_THROW(o.validate());

  o = FlowOptions{};
  o.route.window_escalation = 1;  // a non-growing window never escapes
  expect_invalid(o, "window_escalation");
  o.route.window_escalation = 2;  // boundary: legal
  EXPECT_NO_THROW(o.validate());
}

TEST(FlowOptionsValidate, ThreadCounts) {
  FlowOptions o;
  o.parallelism.n_threads = -1;
  expect_invalid(o, "thread");
  o = FlowOptions{};
  o.place.parallelism.n_threads = -3;
  expect_invalid(o, "thread");
  o = FlowOptions{};
  o.extract.parallelism.n_threads = -1;
  expect_invalid(o, "thread");
  o = FlowOptions{};
  o.route.parallelism.n_threads = -2;
  expect_invalid(o, "thread");
  o = FlowOptions{};
  o.parallelism.n_threads = 16;  // explicit counts are fine
  EXPECT_NO_THROW(o.validate());
}

TEST(FlowOptionsValidate, CacheFieldsAcceptLegalCombinations) {
  FlowOptions o;
  o.cache_dir = "/tmp/ckpt";
  EXPECT_NO_THROW(o.validate());

  o.stop_after = FlowStage::kPlacement;  // stop without resume
  EXPECT_NO_THROW(o.validate());

  o.resume_from = FlowStage::kPlacement;  // resume == stop: one stage runs
  EXPECT_NO_THROW(o.validate());

  o.resume_from = FlowStage::kSubstitution;
  o.stop_after = FlowStage::kExtraction;
  EXPECT_NO_THROW(o.validate());

  o.resume_from.reset();
  o.stop_after = FlowStage::kSynthesis;  // stop_after alone, first stage
  EXPECT_NO_THROW(o.validate());

  // stop_after does not require a cache directory (nothing to load).
  o = FlowOptions{};
  o.stop_after = FlowStage::kRouting;
  EXPECT_NO_THROW(o.validate());
}

TEST(FlowOptionsValidate, ResumeWithoutCacheDirIsRejected) {
  FlowOptions o;
  o.resume_from = FlowStage::kRouting;
  expect_invalid(o, "cache_dir");
}

TEST(FlowOptionsValidate, ResumeFromSynthesisIsRejected) {
  FlowOptions o;
  o.cache_dir = "/tmp/ckpt";
  o.resume_from = FlowStage::kSynthesis;
  expect_invalid(o, "synthesis");
}

TEST(FlowOptionsValidate, StopBeforeResumeIsRejected) {
  FlowOptions o;
  o.cache_dir = "/tmp/ckpt";
  o.resume_from = FlowStage::kRouting;
  o.stop_after = FlowStage::kPlacement;
  expect_invalid(o, "stop_after");
}

TEST(FlowOptionsValidate, AggregatesAllViolationsIntoOneError) {
  // Several independent problems at once: validate() must report every
  // one of them in a single Error, not just the first.
  FlowOptions o;
  o.place.aspect_ratio = -1.0;
  o.place.fill_factor = 2.0;
  o.place.sa_batch = 0;
  o.extract.variation_sigma = -0.5;
  o.resume_from = FlowStage::kRouting;  // without cache_dir
  try {
    o.validate();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("violations"), std::string::npos) << msg;
    EXPECT_NE(msg.find("aspect_ratio"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fill_factor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sa_batch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("variation_sigma"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cache_dir"), std::string::npos) << msg;
  }
}

TEST(FlowOptionsValidate, SingleViolationHasNoAggregateHeader) {
  FlowOptions o;
  o.place.sa_batch = -4;
  try {
    o.validate();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("violations"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sa_batch"), std::string::npos) << msg;
  }
}

TEST(FlowStageApi, NamesAndCounters) {
  EXPECT_STREQ(flow_stage_name(FlowStage::kSynthesis), "synthesis");
  EXPECT_STREQ(flow_stage_name(FlowStage::kSubstitution), "substitution");
  EXPECT_STREQ(flow_stage_name(FlowStage::kPlacement), "placement");
  EXPECT_STREQ(flow_stage_name(FlowStage::kRouting), "routing");
  EXPECT_STREQ(flow_stage_name(FlowStage::kDecomposition), "decomposition");
  EXPECT_STREQ(flow_stage_name(FlowStage::kExtraction), "extraction");

  StageTimings t;
  EXPECT_EQ(t.cache_hits(), 0);
  EXPECT_EQ(t.cache_misses(), 0);
  EXPECT_EQ(t.outcome(FlowStage::kRouting), CacheOutcome::kNotRun);
  EXPECT_EQ(t.key(FlowStage::kRouting), 0u);
  t.cache[static_cast<std::size_t>(FlowStage::kSynthesis)] =
      CacheOutcome::kHit;
  t.cache[static_cast<std::size_t>(FlowStage::kPlacement)] =
      CacheOutcome::kMiss;
  t.cache[static_cast<std::size_t>(FlowStage::kRouting)] =
      CacheOutcome::kDisabled;
  EXPECT_EQ(t.cache_hits(), 1);
  EXPECT_EQ(t.cache_misses(), 1);
}

}  // namespace
}  // namespace secflow
