#include <gtest/gtest.h>

#include "base/error.h"
#include "lef/lef_io.h"
#include "liberty/builtin_lib.h"
#include "pnr/check.h"
#include "pnr/decompose.h"
#include "pnr/def.h"
#include "pnr/place.h"
#include "pnr/render.h"
#include "pnr/route.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

class PnrTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist map_hdl(const std::string& src) {
    return technology_map(parse_hdl(src), lib_);
  }

  static constexpr const char* kSmallDesign = R"(
    module small (input a, input b, input c, input d, output y, output z);
      wire t1, t2;
      assign t1 = a ^ b;
      assign t2 = c & d;
      assign y = t1 | t2;
      assign z = ~(t1 & c);
    endmodule)";
};

// --- DEF round trip ----------------------------------------------------------

TEST_F(PnrTest, DefRoundTrip) {
  DefDesign d;
  d.name = "t";
  d.die = {{0, 0}, {10000, 8000}};
  d.row_height_dbu = 5040;
  d.track_pitch_dbu = 560;
  d.components.push_back(DefComponent{"u1", "INV", {560, 0}});
  DefNet n;
  n.name = "n1";
  n.wires.push_back(Segment{{0, 0}, {1120, 0}, 0, 280});
  n.wires.push_back(Segment{{1120, 0}, {1120, 560}, 1, 280});
  n.vias.push_back(DefVia{{1120, 0}, 0, 1});
  d.nets.push_back(n);

  const DefDesign back = parse_def(write_def(d));
  EXPECT_EQ(back.name, d.name);
  EXPECT_EQ(back.die, d.die);
  ASSERT_EQ(back.components.size(), 1u);
  EXPECT_EQ(back.components[0].origin, (Point{560, 0}));
  ASSERT_EQ(back.nets.size(), 1u);
  EXPECT_EQ(back.nets[0].wires, d.nets[0].wires);
  ASSERT_EQ(back.nets[0].vias.size(), 1u);
  EXPECT_EQ(back.nets[0].vias[0].at, (Point{1120, 0}));
}

TEST_F(PnrTest, DefParserRejectsGarbage) {
  EXPECT_THROW(parse_def("NONSENSE"), ParseError);
  EXPECT_THROW(parse_def("DESIGN x ; COMPONENTS 1 ; END"), Error);
}

// --- floorplan & placement ----------------------------------------------------

TEST_F(PnrTest, FloorplanRespectsFillFactor) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  PlaceOptions opts;
  const Floorplan fp = make_floorplan(nl, lef, opts);
  const double core_um2 =
      dbu_to_um(fp.core.width()) * dbu_to_um(fp.core.height());
  // Core must fit all cells at <= fill factor (with row rounding slack).
  EXPECT_GE(core_um2 * 1.05, nl.total_area_um2() / opts.fill_factor * 0.8);
  EXPECT_GE(fp.n_rows, 1);
  EXPECT_TRUE(fp.die.contains(fp.core.lo));
  EXPECT_TRUE(fp.die.contains(fp.core.hi));
}

TEST_F(PnrTest, PlacementIsLegal) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  const DefDesign d = place_design(nl, lef);
  EXPECT_EQ(d.components.size(), nl.n_instances());
  // Every component inside the die; no overlaps within a row.
  for (const DefComponent& c : d.components) {
    const LefMacro& m = lef.macro(c.macro);
    EXPECT_TRUE(d.die.contains(c.origin)) << c.name;
    EXPECT_TRUE(d.die.contains(
        Point{c.origin.x + m.width_dbu, c.origin.y + m.height_dbu}))
        << c.name;
  }
  for (std::size_t i = 0; i < d.components.size(); ++i) {
    for (std::size_t j = i + 1; j < d.components.size(); ++j) {
      const DefComponent& a = d.components[i];
      const DefComponent& b = d.components[j];
      if (a.origin.y != b.origin.y) continue;
      const std::int64_t aw = lef.macro(a.macro).width_dbu;
      const std::int64_t bw = lef.macro(b.macro).width_dbu;
      const bool disjoint = a.origin.x + aw <= b.origin.x ||
                            b.origin.x + bw <= a.origin.x;
      EXPECT_TRUE(disjoint) << a.name << " overlaps " << b.name;
    }
  }
}

TEST_F(PnrTest, AnnealingImprovesOrEqualsWirelength) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  PlaceOptions no_sa;
  no_sa.sa_moves_per_instance = 0;
  PlaceOptions with_sa;
  with_sa.sa_moves_per_instance = 200;
  const std::int64_t before =
      placement_hpwl(nl, lef, place_design(nl, lef, no_sa));
  const std::int64_t after =
      placement_hpwl(nl, lef, place_design(nl, lef, with_sa));
  EXPECT_LE(after, before + before / 10);  // never much worse
}

TEST_F(PnrTest, PlacementDeterministic) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  const DefDesign a = place_design(nl, lef);
  const DefDesign b = place_design(nl, lef);
  ASSERT_EQ(a.components.size(), b.components.size());
  for (std::size_t i = 0; i < a.components.size(); ++i) {
    EXPECT_EQ(a.components[i].origin, b.components[i].origin);
  }
}

// --- routing -------------------------------------------------------------------

TEST_F(PnrTest, RoutesSmallDesignCleanly) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  DefDesign d = place_design(nl, lef);
  const RouteStats stats = route_design(nl, lef, d);
  EXPECT_GT(stats.nets_routed, 0);
  EXPECT_GT(stats.wirelength_dbu, 0);

  const CheckResult conn = check_connectivity(nl, lef, d, 4 * 560);
  EXPECT_TRUE(conn.ok) << (conn.issues.empty() ? "" : conn.issues[0].net + ": " +
                                                          conn.issues[0].what);
  EXPECT_GT(conn.pins_checked, 0);
  const CheckResult shorts = check_shorts(d, d.track_pitch_dbu);
  EXPECT_TRUE(shorts.ok) << (shorts.issues.empty()
                                 ? ""
                                 : shorts.issues[0].net + " " +
                                       shorts.issues[0].what);
}

TEST_F(PnrTest, RoutingDeterministic) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  DefDesign a = place_design(nl, lef);
  DefDesign b = place_design(nl, lef);
  route_design(nl, lef, a);
  route_design(nl, lef, b);
  EXPECT_EQ(write_def(a), write_def(b));
}

TEST_F(PnrTest, QuickRouteCoversAllNets) {
  const Netlist nl = map_hdl(kSmallDesign);
  const LefLibrary lef = generate_lef(*lib_, {});
  DefDesign d = place_design(nl, lef);
  const RouteStats stats = route_design_quick(nl, lef, d);
  EXPECT_GT(stats.nets_routed, 0);
  // Quick mode guarantees connectivity (not short-freedom).
  const CheckResult conn = check_connectivity(nl, lef, d, 0);
  EXPECT_TRUE(conn.ok);
}

// --- the secure physical pipeline: fat route + decomposition -------------------

class FatFlowTest : public PnrTest {
 protected:
  struct FatArtifacts {
    std::shared_ptr<WddlLibrary> wlib;
    Netlist rtl;
    Netlist fat;
    LefLibrary fat_lef;
    DefDesign fat_def;
  };

  FatArtifacts build_fat(const std::string& src) {
    Netlist rtl = map_hdl(src);
    auto wlib = std::make_shared<WddlLibrary>(lib_);
    SubstitutionResult sub = substitute_cells(rtl, *wlib);
    LefGenOptions fat_opts;
    fat_opts.wire_scale = 2.0;
    LefLibrary fat_lef = generate_lef(*wlib->fat_library(), fat_opts);
    DefDesign fat_def = place_design(sub.fat, fat_lef);
    route_design(sub.fat, fat_lef, fat_def);
    return FatArtifacts{wlib, std::move(rtl), std::move(sub.fat),
                        std::move(fat_lef), std::move(fat_def)};
  }
};

TEST_F(FatFlowTest, FatRouteIsCleanAndConnected) {
  FatArtifacts art = build_fat(kSmallDesign);
  const std::int64_t fat_pitch = art.fat_lef.track_pitch_dbu();
  EXPECT_TRUE(check_connectivity(art.fat, art.fat_lef, art.fat_def,
                                 4 * fat_pitch)
                  .ok);
  EXPECT_TRUE(check_shorts(art.fat_def, fat_pitch).ok);
}

TEST_F(FatFlowTest, DecompositionProducesMatchedRails) {
  FatArtifacts art = build_fat(kSmallDesign);
  const Process018 pr;
  const std::int64_t p = um_to_dbu(pr.wire_pitch_um);
  const std::int64_t w = um_to_dbu(pr.wire_width_um);
  const DefDesign diff = decompose_interconnect(art.fat_def, p, w);

  // Every fat net became a rail pair (no clock in this design).
  EXPECT_EQ(diff.nets.size(), 2 * art.fat_def.nets.size());
  const CheckResult sym = check_differential_symmetry(diff, p);
  EXPECT_TRUE(sym.ok) << (sym.issues.empty() ? "" : sym.issues[0].net + ": " +
                                                        sym.issues[0].what);
  EXPECT_GT(sym.nets_checked, 0);
}

TEST_F(FatFlowTest, DecompositionKeepsClockSingleEnded) {
  FatArtifacts art = build_fat(R"(
    module seq (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d ^ r;
      assign q = r;
    endmodule)");
  const Process018 pr;
  DecomposeOptions opts;
  opts.single_ended_nets = {"clk"};
  const DefDesign diff = decompose_interconnect(
      art.fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um),
      opts);
  EXPECT_NE(diff.find_net("clk"), nullptr);
  EXPECT_EQ(diff.find_net("clk_t"), nullptr);
  // Clock wire was width-reduced.
  for (const Segment& s : diff.find_net("clk")->wires) {
    EXPECT_EQ(s.width, um_to_dbu(pr.wire_width_um));
  }
}

TEST_F(FatFlowTest, DiffLefSplitsPins) {
  FatArtifacts art = build_fat(kSmallDesign);
  const Process018 pr;
  const LefLibrary diff_lef =
      make_diff_lef(art.fat_lef, pr.wire_pitch_um, pr.wire_width_um);
  EXPECT_EQ(diff_lef.n_macros(), art.fat_lef.n_macros());
  for (const LefMacro& fm : art.fat_lef.macros()) {
    const LefMacro& dm = diff_lef.macro(fm.name);
    for (const LefPin& pin : fm.pins) {
      if (pin.name == "CK") {
        EXPECT_NE(dm.find_pin("CK"), nullptr);
        continue;
      }
      const LefPin* t = dm.find_pin(pin.name + "_t");
      const LefPin* f = dm.find_pin(pin.name + "_f");
      ASSERT_NE(t, nullptr) << fm.name << '/' << pin.name;
      ASSERT_NE(f, nullptr) << fm.name << '/' << pin.name;
      EXPECT_EQ(t->offset, pin.offset);
      EXPECT_EQ(f->offset.x - t->offset.x, um_to_dbu(pr.wire_pitch_um));
      EXPECT_EQ(f->offset.y - t->offset.y, um_to_dbu(pr.wire_pitch_um));
    }
  }
}


TEST_F(FatFlowTest, StreamOutCheckPassesAndCatchesCorruption) {
  FatArtifacts art = build_fat(kSmallDesign);
  const Process018 pr;
  DefDesign diff = decompose_interconnect(
      art.fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
  const LefLibrary diff_lef =
      make_diff_lef(art.fat_lef, pr.wire_pitch_um, pr.wire_width_um);
  const std::int64_t tol = 5 * art.fat_lef.track_pitch_dbu();
  const CheckResult ok = check_stream_out(art.fat, diff_lef, diff, tol);
  EXPECT_TRUE(ok.ok) << (ok.issues.empty() ? "" : ok.issues[0].net + ": " +
                                                      ok.issues[0].what);
  EXPECT_GT(ok.pins_checked, 0);

  // Corrupt: drop one rail's wiring entirely.
  for (DefNet& net : diff.nets) {
    if (!net.wires.empty() && net.name.ends_with("_f")) {
      // Move the rail far away instead of deleting it (a "net missing"
      // error is tested separately below).
      for (Segment& seg : net.wires) seg = seg.translated(900000, 900000);
      for (DefVia& v : net.vias) v.at = {v.at.x + 900000, v.at.y + 900000};
      break;
    }
  }
  EXPECT_FALSE(check_stream_out(art.fat, diff_lef, diff, tol).ok);

  // Missing net entirely.
  diff.nets.pop_back();
  diff.nets.pop_back();
  const CheckResult missing = check_stream_out(art.fat, diff_lef, diff, tol);
  EXPECT_FALSE(missing.ok);
}

TEST_F(FatFlowTest, RenderedLayoutsLookSane) {
  FatArtifacts art = build_fat(kSmallDesign);
  const std::string fat_pic = render_design(art.fat_def);
  EXPECT_NE(fat_pic.find('#'), std::string::npos);   // components
  EXPECT_NE(fat_pic.find('-'), std::string::npos);   // wires
  const Process018 pr;
  const DefDesign diff = decompose_interconnect(
      art.fat_def, um_to_dbu(pr.wire_pitch_um), um_to_dbu(pr.wire_width_um));
  const std::string diff_pic = render_design(diff);
  EXPECT_GT(diff_pic.size(), 100u);
}

}  // namespace
}  // namespace secflow
