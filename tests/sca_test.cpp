#include <gtest/gtest.h>

#include <fstream>

#include "base/error.h"
#include "base/rng.h"
#include "crypto/des.h"
#include "liberty/builtin_lib.h"
#include "sca/dfa.h"
#include "sca/dpa.h"
#include "sca/dpa_experiment.h"
#include "sca/ema.h"
#include "sca/trace_io.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

// --- DPA engine on synthetic traces -------------------------------------------

/// Synthetic leaky device: the "power" at sample 5 is bias + leak when the
/// selected bit of S(ct ^ key) is 1, plus noise.
DpaAnalysis make_synthetic_campaign(std::uint32_t key, double leak,
                                    double noise, int n, int bit = 0) {
  auto selection = [bit](std::uint32_t ct, std::uint32_t guess) {
    return ((des_sbox(1, (ct ^ guess) & 0x3F) >> bit) & 1) != 0;
  };
  DpaAnalysis dpa(selection);
  Rng rng(4242);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t ct = static_cast<std::uint32_t>(rng.next_below(64));
    DpaMeasurement m;
    m.ciphertext = ct;
    m.samples.assign(16, 0.0);
    for (double& s : m.samples) s = noise * rng.next_gaussian();
    if (selection(ct, key)) m.samples[5] += leak;
    dpa.add_measurement(std::move(m));
  }
  return dpa;
}

TEST(Dpa, RecoversKeyFromLeakyTraces) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 1.0, 0.2, 400);
  const DpaResult r = dpa.analyze(46);
  EXPECT_EQ(r.best_guess, 46);
  EXPECT_TRUE(r.disclosed);
}

TEST(Dpa, NoLeakNoDisclosure) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 0.0, 0.2, 400);
  const DpaResult r = dpa.analyze(46);
  EXPECT_FALSE(r.disclosed);
}

TEST(Dpa, MtdShrinksWithStrongerLeak) {
  const std::vector<int> grid = {25, 50, 100, 200, 400, 800};
  const int mtd_strong =
      make_synthetic_campaign(46, 2.0, 0.2, 800).measurements_to_disclosure(
          46, grid);
  const int mtd_weak =
      make_synthetic_campaign(46, 0.35, 0.2, 800).measurements_to_disclosure(
          46, grid);
  ASSERT_GT(mtd_strong, 0);
  ASSERT_GT(mtd_weak, 0);
  EXPECT_LT(mtd_strong, mtd_weak);
}

TEST(Dpa, MtdMinusOneWhenHidden) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 0.0, 0.3, 300);
  EXPECT_EQ(dpa.measurements_to_disclosure(46, {100, 200, 300}), -1);
}

TEST(Dpa, DifferentialTraceLocatesLeakSample) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 1.0, 0.1, 500);
  const std::vector<double> diff = dpa.differential_trace(46);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < diff.size(); ++i) {
    if (std::abs(diff[i]) > std::abs(diff[argmax])) argmax = i;
  }
  EXPECT_EQ(argmax, 5u);
}

TEST(Dpa, PeakToPeakHelper) {
  EXPECT_DOUBLE_EQ(peak_to_peak({}), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_peak({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_peak({-1.0, 2.0, 0.5}), 3.0);
}

TEST(Dpa, RejectsMismatchedTraceLengths) {
  DpaAnalysis dpa(des_selection(0));
  dpa.add_measurement({std::vector<double>(8, 0.0), 0});
  EXPECT_THROW(dpa.add_measurement({std::vector<double>(9, 0.0), 0}), Error);
}

// --- EMA ------------------------------------------------------------------------

TEST(Ema, SuppressionMatchesGeometry) {
  EmaGeometry g;
  g.separation_um = 1.0;
  g.probe_distance_mm = 1.0;
  const EmaFigures f = ema_far_field(g);
  // s/d = 1e-6/1e-3 -> suppression ~ 2e-3.
  EXPECT_NEAR(f.suppression_ratio, 2e-3, 1e-4);
  EXPECT_LT(f.differential_pair_field, f.single_wire_field);
}

TEST(Ema, SuppressionImprovesWithDistance) {
  EmaGeometry near;
  near.probe_distance_mm = 1.0;
  EmaGeometry far = near;
  far.probe_distance_mm = 10.0;
  EXPECT_GT(ema_far_field(near).suppression_ratio,
            ema_far_field(far).suppression_ratio);
  EXPECT_GT(ema_extra_precision_bits(far), ema_extra_precision_bits(near));
}

TEST(Ema, PaperGeometryNeedsUnrealisticPrecision) {
  // At the paper's geometry the probe needs ~9+ extra bits at 1 mm.
  EmaGeometry g;
  EXPECT_GT(ema_extra_precision_bits(g), 8.0);
}

TEST(Ema, RejectsBadGeometry) {
  EmaGeometry g;
  g.separation_um = 0.0;
  EXPECT_THROW(ema_far_field(g), Error);
}

// --- trace export -----------------------------------------------------------------

TEST(TraceIo, SeriesCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series.csv";
  write_series_csv(path, {"a", "b"}, {{1.0, 2.0, 3.0}, {4.5}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,4.5");
  std::getline(f, line);
  EXPECT_EQ(line, "2,");
}

TEST(TraceIo, TracesCsv) {
  const std::string path = ::testing::TempDir() + "/traces.csv";
  write_traces_csv(path, {{1, 2}, {3, 4}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
}

TEST(TraceIo, MismatchThrows) {
  EXPECT_THROW(write_series_csv("/tmp/x.csv", {"a"}, {}), Error);
  EXPECT_THROW(write_series_csv("/no/such/dir/x.csv", {"a"}, {{1.0}}), Error);
}

// --- DFA glitch detection --------------------------------------------------------

class DfaTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist make_diff() {
    const Netlist rtl = technology_map(parse_hdl(R"(
      module m (input clk, input [3:0] a, output q);
        reg r;
        always @(posedge clk) r <= (a[0] ^ a[1]) ^ (a[2] ^ a[3]);
        assign q = r;
      endmodule)"),
                                       lib_);
    wlib_ = std::make_shared<WddlLibrary>(lib_);
    SubstitutionResult sub = substitute_cells(rtl, *wlib_);
    return expand_differential(sub.fat, *wlib_);
  }

  std::shared_ptr<WddlLibrary> wlib_;
};

TEST_F(DfaTest, NormalOperationRaisesNoAlarm) {
  const Netlist diff = make_diff();
  const DfaMonitor monitor(diff);
  EXPECT_GT(monitor.n_monitored_registers(), 0);

  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(diff, {}, opts);
  auto drive = [&](unsigned v) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input("a_" + std::to_string(i) + "_t", (v >> i) & 1);
      sim.set_input("a_" + std::to_string(i) + "_f", !((v >> i) & 1));
    }
  };
  drive(0b0101);
  sim.run_cycle();
  drive(0b1110);
  sim.run_cycle();
  sim.run_cycle();
  EXPECT_TRUE(monitor.check(sim).empty());
}

TEST_F(DfaTest, ClockGlitchTriggersAlarm) {
  const Netlist diff = make_diff();
  const DfaMonitor monitor(diff);
  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(diff, {}, opts);
  auto drive = [&](unsigned v) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input("a_" + std::to_string(i) + "_t", (v >> i) & 1);
      sim.set_input("a_" + std::to_string(i) + "_f", !((v >> i) & 1));
    }
  };
  drive(0b0101);
  sim.run_cycle();
  drive(0b1010);
  // Glitch: the period is far too short for the evaluation wave to reach
  // the register; masters capture (0,0).
  sim.run_cycle(300.0);
  const auto alarms = monitor.check(sim);
  ASSERT_FALSE(alarms.empty());
  EXPECT_TRUE(alarms[0].both_zero);
}

TEST_F(DfaTest, MonitorRequiresWddlRegisters) {
  const Netlist rtl = technology_map(parse_hdl(R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d;
      assign q = r;
    endmodule)"),
                                     lib_);
  EXPECT_THROW(DfaMonitor{rtl}, Error);
}

// --- the paper's DPA experiment, reduced scale -----------------------------------

TEST(DesDpaExperiment, SelectionFunctionPacksCiphertext) {
  const SelectionFn sel = des_selection(2);
  // ct = cl | cr<<4; prediction = bit2 of cl ^ S1(cr ^ guess).
  const std::uint32_t cl = 0b1010, cr = 0b010110;
  const bool expect = ((cl ^ des_sbox(1, cr ^ 46u)) >> 2) & 1;
  EXPECT_EQ(sel(cl | (cr << 4), 46u), expect);
}

}  // namespace
}  // namespace secflow
