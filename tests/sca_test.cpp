#include <gtest/gtest.h>

#include <fstream>

#include "base/error.h"
#include "base/rng.h"
#include "crypto/des.h"
#include "leakage/cpa.h"
#include "liberty/builtin_lib.h"
#include "sca/dfa.h"
#include "sca/selection.h"
#include "sca/dpa.h"
#include "sca/dpa_experiment.h"
#include "sca/ema.h"
#include "sca/trace_io.h"
#include "synth/hdl.h"
#include "synth/techmap.h"
#include "wddl/cell_substitution.h"
#include "wddl/wddl_library.h"

namespace secflow {
namespace {

// --- DPA engine on synthetic traces -------------------------------------------

/// Synthetic leaky device: the "power" at sample 5 is bias + leak when the
/// selected bit of S(ct ^ key) is 1, plus noise.
DpaAnalysis make_synthetic_campaign(std::uint32_t key, double leak,
                                    double noise, int n, int bit = 0) {
  auto selection = [bit](std::uint32_t ct, std::uint32_t guess) {
    return ((des_sbox(1, (ct ^ guess) & 0x3F) >> bit) & 1) != 0;
  };
  DpaAnalysis dpa(selection);
  Rng rng(4242);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t ct = static_cast<std::uint32_t>(rng.next_below(64));
    DpaMeasurement m;
    m.ciphertext = ct;
    m.samples.assign(16, 0.0);
    for (double& s : m.samples) s = noise * rng.next_gaussian();
    if (selection(ct, key)) m.samples[5] += leak;
    dpa.add_measurement(std::move(m));
  }
  return dpa;
}

TEST(Dpa, RecoversKeyFromLeakyTraces) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 1.0, 0.2, 400);
  const DpaResult r = dpa.analyze(46);
  EXPECT_EQ(r.best_guess, 46);
  EXPECT_TRUE(r.disclosed);
}

TEST(Dpa, NoLeakNoDisclosure) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 0.0, 0.2, 400);
  const DpaResult r = dpa.analyze(46);
  EXPECT_FALSE(r.disclosed);
}

TEST(Dpa, MtdShrinksWithStrongerLeak) {
  const std::vector<int> grid = {25, 50, 100, 200, 400, 800};
  const int mtd_strong =
      make_synthetic_campaign(46, 2.0, 0.2, 800).measurements_to_disclosure(
          46, grid);
  const int mtd_weak =
      make_synthetic_campaign(46, 0.35, 0.2, 800).measurements_to_disclosure(
          46, grid);
  ASSERT_GT(mtd_strong, 0);
  ASSERT_GT(mtd_weak, 0);
  EXPECT_LT(mtd_strong, mtd_weak);
}

TEST(Dpa, MtdMinusOneWhenHidden) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 0.0, 0.3, 300);
  EXPECT_EQ(dpa.measurements_to_disclosure(46, {100, 200, 300}), -1);
}

TEST(Dpa, DifferentialTraceLocatesLeakSample) {
  const DpaAnalysis dpa = make_synthetic_campaign(46, 1.0, 0.1, 500);
  const std::vector<double> diff = dpa.differential_trace(46);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < diff.size(); ++i) {
    if (std::abs(diff[i]) > std::abs(diff[argmax])) argmax = i;
  }
  EXPECT_EQ(argmax, 5u);
}

TEST(Dpa, PeakToPeakHelper) {
  EXPECT_DOUBLE_EQ(peak_to_peak({}), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_peak({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_peak({-1.0, 2.0, 0.5}), 3.0);
}

TEST(Dpa, RejectsMismatchedTraceLengths) {
  DpaAnalysis dpa(des_selection(0));
  dpa.add_measurement({std::vector<double>(8, 0.0), 0});
  EXPECT_THROW(dpa.add_measurement({std::vector<double>(9, 0.0), 0}), Error);
}

// --- EMA ------------------------------------------------------------------------

TEST(Ema, SuppressionMatchesGeometry) {
  EmaGeometry g;
  g.separation_um = 1.0;
  g.probe_distance_mm = 1.0;
  const EmaFigures f = ema_far_field(g);
  // s/d = 1e-6/1e-3 -> suppression ~ 2e-3.
  EXPECT_NEAR(f.suppression_ratio, 2e-3, 1e-4);
  EXPECT_LT(f.differential_pair_field, f.single_wire_field);
}

TEST(Ema, SuppressionImprovesWithDistance) {
  EmaGeometry near;
  near.probe_distance_mm = 1.0;
  EmaGeometry far = near;
  far.probe_distance_mm = 10.0;
  EXPECT_GT(ema_far_field(near).suppression_ratio,
            ema_far_field(far).suppression_ratio);
  EXPECT_GT(ema_extra_precision_bits(far), ema_extra_precision_bits(near));
}

TEST(Ema, PaperGeometryNeedsUnrealisticPrecision) {
  // At the paper's geometry the probe needs ~9+ extra bits at 1 mm.
  EmaGeometry g;
  EXPECT_GT(ema_extra_precision_bits(g), 8.0);
}

TEST(Ema, RejectsBadGeometry) {
  EmaGeometry g;
  g.separation_um = 0.0;
  EXPECT_THROW(ema_far_field(g), Error);
}

// --- trace export -----------------------------------------------------------------

TEST(TraceIo, SeriesCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/series.csv";
  write_series_csv(path, {"a", "b"}, {{1.0, 2.0, 3.0}, {4.5}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,4.5");
  std::getline(f, line);
  EXPECT_EQ(line, "2,");
}

TEST(TraceIo, TracesCsv) {
  const std::string path = ::testing::TempDir() + "/traces.csv";
  write_traces_csv(path, {{1, 2}, {3, 4}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
}

TEST(TraceIo, MismatchThrows) {
  EXPECT_THROW(write_series_csv("/tmp/x.csv", {"a"}, {}), Error);
  EXPECT_THROW(write_series_csv("/no/such/dir/x.csv", {"a"}, {{1.0}}), Error);
}

// --- DFA glitch detection --------------------------------------------------------

class DfaTest : public ::testing::Test {
 protected:
  std::shared_ptr<const CellLibrary> lib_ = builtin_stdcell018();

  Netlist make_diff() {
    const Netlist rtl = technology_map(parse_hdl(R"(
      module m (input clk, input [3:0] a, output q);
        reg r;
        always @(posedge clk) r <= (a[0] ^ a[1]) ^ (a[2] ^ a[3]);
        assign q = r;
      endmodule)"),
                                       lib_);
    wlib_ = std::make_shared<WddlLibrary>(lib_);
    SubstitutionResult sub = substitute_cells(rtl, *wlib_);
    return expand_differential(sub.fat, *wlib_);
  }

  std::shared_ptr<WddlLibrary> wlib_;
};

TEST_F(DfaTest, NormalOperationRaisesNoAlarm) {
  const Netlist diff = make_diff();
  const DfaMonitor monitor(diff);
  EXPECT_GT(monitor.n_monitored_registers(), 0);

  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(diff, {}, opts);
  auto drive = [&](unsigned v) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input("a_" + std::to_string(i) + "_t", (v >> i) & 1);
      sim.set_input("a_" + std::to_string(i) + "_f", !((v >> i) & 1));
    }
  };
  drive(0b0101);
  sim.run_cycle();
  drive(0b1110);
  sim.run_cycle();
  sim.run_cycle();
  EXPECT_TRUE(monitor.check(sim).empty());
}

TEST_F(DfaTest, ClockGlitchTriggersAlarm) {
  const Netlist diff = make_diff();
  const DfaMonitor monitor(diff);
  PowerSimOptions opts;
  opts.precharge_inputs = true;
  PowerSimulator sim(diff, {}, opts);
  auto drive = [&](unsigned v) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input("a_" + std::to_string(i) + "_t", (v >> i) & 1);
      sim.set_input("a_" + std::to_string(i) + "_f", !((v >> i) & 1));
    }
  };
  drive(0b0101);
  sim.run_cycle();
  drive(0b1010);
  // Glitch: the period is far too short for the evaluation wave to reach
  // the register; masters capture (0,0).
  sim.run_cycle(300.0);
  const auto alarms = monitor.check(sim);
  ASSERT_FALSE(alarms.empty());
  EXPECT_TRUE(alarms[0].both_zero);
}

TEST_F(DfaTest, MonitorRequiresWddlRegisters) {
  const Netlist rtl = technology_map(parse_hdl(R"(
    module m (input clk, input d, output q);
      reg r;
      always @(posedge clk) r <= d;
      assign q = r;
    endmodule)"),
                                     lib_);
  EXPECT_THROW(DfaMonitor{rtl}, Error);
}

// --- the paper's DPA experiment, reduced scale -----------------------------------

TEST(DesDpaExperiment, SelectionFunctionPacksCiphertext) {
  const SelectionFn sel = des_selection(2);
  // ct = cl | cr<<4; prediction = bit2 of cl ^ S1(cr ^ guess).
  const std::uint32_t cl = 0b1010, cr = 0b010110;
  const bool expect = ((cl ^ des_sbox(1, cr ^ 46u)) >> 2) & 1;
  EXPECT_EQ(sel(cl | (cr << 4), 46u), expect);
}

// --- the shared selection / hypothesis core (sca/selection.h) -------------------

TEST(Selection, PredictPlReconstructsTheRegisterNibble) {
  // PL = CL ^ Sbox(CR ^ K) for every packing, exact at the correct key.
  for (std::uint32_t cl = 0; cl < 16; ++cl) {
    for (std::uint32_t cr : {0u, 21u, 46u, 63u}) {
      const std::uint32_t ct = cl | (cr << 4);
      EXPECT_EQ(des_predict_pl(ct, 46, 1), cl ^ des_sbox(1, cr ^ 46u));
      EXPECT_EQ(des_predict_pl(ct, 0, 2), cl ^ des_sbox(2, cr));
    }
  }
}

TEST(Selection, DpaSelectionIsABitOfTheSharedPrediction) {
  // The DPA partition predicate and the CPA hypotheses must derive from
  // the same intermediate — that is the whole point of selection.h.
  for (int bit = 0; bit < 4; ++bit) {
    const SelectionFn sel = des_selection(bit);
    for (std::uint32_t ct : {0x0u, 0x1A5u, 0x2FFu, 0x173u}) {
      for (std::uint32_t g : {0u, 17u, 46u, 63u}) {
        EXPECT_EQ(sel(ct, g),
                  ((des_predict_pl(ct, g) >> bit) & 1u) != 0);
      }
    }
  }
}

TEST(Selection, HypothesesAreHwAndHdOfTheSharedPrediction) {
  const HypothesisFn hw = des_hypothesis(PowerModel::kHammingWeight);
  const HypothesisFn hd = des_hypothesis(PowerModel::kHammingDistance);
  for (std::uint32_t ct : {0x12Bu, 0x3C4u}) {
    for (std::uint32_t prev : {0x0u, 0x2D9u}) {
      for (std::uint32_t g : {7u, 46u}) {
        EXPECT_EQ(hw(ct, prev, g),
                  hamming_weight(des_predict_pl(ct, g)));
        EXPECT_EQ(hd(ct, prev, g),
                  hamming_weight(des_predict_pl(ct, g) ^
                                 des_predict_pl(prev, g)));
      }
    }
  }
}

TEST(Selection, PowerModelNamesRoundTrip) {
  EXPECT_STREQ(power_model_name(PowerModel::kHammingWeight), "hw");
  EXPECT_STREQ(power_model_name(PowerModel::kHammingDistance), "hd");
  EXPECT_EQ(parse_power_model("hw"), PowerModel::kHammingWeight);
  EXPECT_EQ(parse_power_model("hd"), PowerModel::kHammingDistance);
  EXPECT_FALSE(parse_power_model("hamming").has_value());
  EXPECT_FALSE(parse_power_model("").has_value());
}

TEST(Selection, DpaAndCpaRecoverTheSameKeyThroughTheSharedCore) {
  // One synthetic device leaking HW(PL): the difference-of-means DPA
  // (partition via des_selection) and the correlation CPA (hypotheses via
  // des_hypothesis) must both converge on the planted key.
  const std::uint32_t key = 46;
  Rng rng(991);
  DpaAnalysis dpa(des_selection(0));
  std::vector<CpaMeasurement> cpa_traces;
  for (int i = 0; i < 600; ++i) {
    const std::uint32_t ct = static_cast<std::uint32_t>(rng.next_below(1024));
    const double leak =
        static_cast<double>(hamming_weight(des_predict_pl(ct, key)));
    std::vector<double> samples(8);
    for (double& s : samples) s = 0.3 * rng.next_gaussian();
    samples[3] += leak;
    DpaMeasurement dm;
    dm.ciphertext = ct;
    dm.samples = samples;
    dpa.add_measurement(std::move(dm));
    CpaMeasurement cm;
    cm.ct = ct;
    cm.prev_ct = 0;
    cm.samples = std::move(samples);
    cpa_traces.push_back(std::move(cm));
  }
  const DpaResult dr = dpa.analyze(key);
  EXPECT_EQ(dr.best_guess, static_cast<int>(key));
  EXPECT_TRUE(dr.disclosed);
  const CpaAccumulator acc = accumulate_cpa(
      cpa_traces, des_hypothesis(PowerModel::kHammingWeight), {});
  const CpaRanking cr = cpa_ranking(acc);
  EXPECT_EQ(cr.best_guess, static_cast<int>(key));
  EXPECT_EQ(cr.rank_of(static_cast<int>(key)), 1);
  EXPECT_TRUE(cr.disclosed(key, 0.05));
}

}  // namespace
}  // namespace secflow
