#include <gtest/gtest.h>

#include "base/error.h"

#include "crypto/aes.h"
#include "crypto/des.h"
#include "liberty/builtin_lib.h"
#include "netlist/netlist_ops.h"
#include "synth/techmap.h"

namespace secflow {
namespace {

// --- DES S-boxes ------------------------------------------------------------

TEST(DesSbox, KnownValues) {
  // FIPS 46-3 spot checks: S1(0) = row0 col0 = 14; S1(63): row 3, col 15.
  EXPECT_EQ(des_sbox(1, 0), 14u);
  EXPECT_EQ(des_sbox(1, 63), 13u);
  // Input 0b000010 -> row 0, col 1 -> 4.
  EXPECT_EQ(des_sbox(1, 0b000010), 4u);
  // Input 0b100001 -> row 3 (b5=1, b0=1), col 0 -> 15.
  EXPECT_EQ(des_sbox(1, 0b100001), 15u);
  EXPECT_EQ(des_sbox(8, 0), 13u);
}

TEST(DesSbox, EveryRowIsAPermutation) {
  // DES S-box rows are permutations of 0..15 (a design criterion).
  for (int box = 1; box <= 8; ++box) {
    for (std::uint32_t row = 0; row < 4; ++row) {
      unsigned seen = 0;
      for (std::uint32_t col = 0; col < 16; ++col) {
        const std::uint32_t in = ((row & 2) << 4) | (col << 1) | (row & 1);
        seen |= 1u << des_sbox(box, in);
      }
      EXPECT_EQ(seen, 0xFFFFu) << "S" << box << " row " << row;
    }
  }
}

TEST(DesSbox, RejectsBadArguments) {
  EXPECT_THROW(des_sbox(0, 0), Error);
  EXPECT_THROW(des_sbox(9, 0), Error);
  EXPECT_THROW(des_sbox(1, 64), Error);
}

TEST(DesDpa, ReferenceAndSelectionAgree) {
  // The selection function inverts the reference encryption exactly.
  for (std::uint32_t pl = 0; pl < 16; pl += 5) {
    for (std::uint32_t pr = 0; pr < 64; pr += 11) {
      for (std::uint32_t k : {0u, 46u, 63u}) {
        const std::uint32_t ct = des_dpa_reference(pl, pr, k);
        const std::uint32_t cl = ct & 0xF;
        const std::uint32_t cr = (ct >> 4) & 0x3F;
        EXPECT_EQ(cr, pr);
        for (int bit = 0; bit < 4; ++bit) {
          EXPECT_EQ(des_dpa_selection(cl, cr, k, bit),
                    ((pl >> bit) & 1) != 0)
              << pl << ' ' << pr << ' ' << k << " bit " << bit;
        }
      }
    }
  }
}

TEST(DesDpa, WrongKeyPredictionIsWrongSomewhere) {
  // A wrong key guess must mispredict the PL bit for some ciphertext.
  const std::uint32_t k = 46;
  for (std::uint32_t g = 0; g < 64; ++g) {
    if (g == k) continue;
    bool differs = false;
    for (std::uint32_t pr = 0; pr < 64 && !differs; ++pr) {
      const std::uint32_t ct = des_dpa_reference(5, pr, k);
      for (int bit = 0; bit < 4; ++bit) {
        if (des_dpa_selection(ct & 0xF, (ct >> 4) & 0x3F, g, bit) !=
            (((5u >> bit) & 1) != 0)) {
          differs = true;
        }
      }
    }
    EXPECT_TRUE(differs) << "guess " << g;
  }
}

TEST(DesDpa, CircuitMatchesReferenceModel) {
  const auto lib = builtin_stdcell018();
  const Netlist rtl = technology_map(make_des_dpa_circuit(), lib);
  rtl.validate();
  FunctionalSim sim(rtl);
  for (std::uint32_t pl = 0; pl < 16; pl += 3) {
    for (std::uint32_t pr = 0; pr < 64; pr += 13) {
      for (std::uint32_t k : {0u, 46u, 63u}) {
        for (int b = 0; b < 4; ++b) {
          sim.set_input("pl_" + std::to_string(b), (pl >> b) & 1);
        }
        for (int b = 0; b < 6; ++b) {
          sim.set_input("pr_" + std::to_string(b), (pr >> b) & 1);
          sim.set_input("k_" + std::to_string(b), (k >> b) & 1);
        }
        sim.propagate();
        sim.step_clock();  // PL/PR load the plaintext
        sim.step_clock();  // CL/CR load the ciphertext
        std::uint32_t cl = 0, cr = 0;
        for (int b = 0; b < 4; ++b) {
          cl |= sim.output("cl_" + std::to_string(b)) << b;
        }
        for (int b = 0; b < 6; ++b) {
          cr |= sim.output("cr_" + std::to_string(b)) << b;
        }
        EXPECT_EQ(cl | (cr << 4), des_dpa_reference(pl, pr, k))
            << pl << ' ' << pr << ' ' << k;
      }
    }
  }
}

// --- AES S-box ----------------------------------------------------------------

TEST(AesSbox, KnownValues) {
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x01), 0x7c);
  EXPECT_EQ(aes_sbox(0x53), 0xed);
  EXPECT_EQ(aes_sbox(0xff), 0x16);
}

TEST(AesSbox, IsAPermutationWithNoFixedPoint) {
  unsigned long long seen[4] = {0, 0, 0, 0};
  for (unsigned v = 0; v < 256; ++v) {
    const std::uint8_t s = aes_sbox(static_cast<std::uint8_t>(v));
    EXPECT_NE(s, v) << "fixed point";  // AES S-box has none
    seen[s >> 6] |= 1ull << (s & 63);
  }
  for (auto w : seen) EXPECT_EQ(w, ~0ull);
}

TEST(AesSbox, CircuitMatchesTable) {
  const auto lib = builtin_stdcell018();
  const AigCircuit c = make_aes_sbox_array(1);
  // Check the AIG directly (mapping one box is exercised elsewhere).
  std::vector<bool> vals(c.aig.n_nodes(), false);
  for (unsigned v = 0; v < 256; v += 7) {
    for (const CircuitBit& in : c.inputs) {
      const int bit = in.name.back() - '0';
      vals[aig_node(in.lit)] = (v >> bit) & 1;
    }
    // Register next-state = S-box output.
    for (int bit = 0; bit < 8; ++bit) {
      for (const CircuitReg& r : c.regs) {
        if (r.name == "r0_" + std::to_string(bit)) {
          EXPECT_EQ(c.aig.eval(r.next, vals),
                    ((aes_sbox(static_cast<std::uint8_t>(v)) >> bit) & 1) != 0)
              << "v=" << v << " bit " << bit;
        }
      }
    }
  }
  (void)lib;
}

TEST(AesSbox, ArrayScales) {
  const AigCircuit one = make_aes_sbox_array(1);
  const AigCircuit four = make_aes_sbox_array(4);
  EXPECT_EQ(four.regs.size(), 4 * one.regs.size());
  EXPECT_GT(four.aig.n_ands(), 3 * one.aig.n_ands());
}

}  // namespace
}  // namespace secflow
